#include "exp/accuracy.hpp"

#include "ml/metrics.hpp"
#include "util/table.hpp"

namespace autopower::exp {

std::string Accuracy::to_string() const {
  return "MAPE=" + util::fmt_pct(mape) + " R2=" + util::fmt(r2) +
         " R=" + util::fmt(pearson) + " (n=" + std::to_string(n) + ")";
}

Accuracy compute_accuracy(std::span<const double> actual,
                          std::span<const double> predicted) {
  Accuracy acc;
  acc.mape = ml::mape(actual, predicted);
  acc.r2 = ml::r2_score(actual, predicted);
  acc.pearson = ml::pearson_r(actual, predicted);
  acc.n = actual.size();
  return acc;
}

}  // namespace autopower::exp
