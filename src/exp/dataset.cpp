#include "exp/dataset.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"
#include "workload/workload.hpp"

namespace autopower::exp {

ExperimentData ExperimentData::build(const sim::PerfSimulator& sim,
                                     const power::GoldenPowerModel& golden) {
  ExperimentData data;
  const auto& configs = arch::boom_design_space();
  const auto& workloads = workload::riscv_tests_workloads();
  data.samples_.reserve(configs.size() * workloads.size());
  for (const auto& cfg : configs) {
    for (const auto& w : workloads) {
      LabeledSample s;
      s.ctx.cfg = &cfg;
      s.ctx.workload = w.name;
      s.ctx.program = workload::program_features(w);
      s.ctx.events = sim.simulate(cfg, w);
      s.golden = golden.evaluate(cfg, s.ctx.events);
      data.samples_.push_back(std::move(s));
    }
  }
  return data;
}

namespace {
bool contains(std::span<const std::string> names, const std::string& name) {
  return std::find(names.begin(), names.end(), name) != names.end();
}
}  // namespace

std::vector<core::EvalContext> ExperimentData::contexts_of(
    std::span<const std::string> config_names) const {
  std::vector<core::EvalContext> out;
  for (const auto& s : samples_) {
    if (contains(config_names, s.ctx.cfg->name())) out.push_back(s.ctx);
  }
  AP_REQUIRE(!out.empty(), "no samples match the requested configurations");
  return out;
}

std::vector<const LabeledSample*> ExperimentData::samples_excluding(
    std::span<const std::string> config_names) const {
  std::vector<const LabeledSample*> out;
  for (const auto& s : samples_) {
    if (!contains(config_names, s.ctx.cfg->name())) out.push_back(&s);
  }
  return out;
}

std::vector<std::string> ExperimentData::training_configs(int k) {
  AP_REQUIRE(k >= 2 && k <= 15, "training set size must be in [2, 15]");
  // Evenly spread indices over C1..C15 (always including both corners).
  std::vector<std::string> out;
  out.reserve(static_cast<std::size_t>(k));
  for (int i = 0; i < k; ++i) {
    const int idx = static_cast<int>(
        std::lround(static_cast<double>(i) * 14.0 / (k - 1)));
    out.push_back("C" + std::to_string(idx + 1));
  }
  return out;
}

}  // namespace autopower::exp
