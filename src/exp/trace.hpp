// Time-based power trace experiment support (paper Sec. III-B5, Table IV).
//
// Builds per-window evaluation contexts and golden per-window power for a
// large workload (GEMM/SPMM) on one configuration; summarises a predicted
// trace against the golden trace with the paper's three error metrics:
// maximal-power error, minimal-power error, and average per-window error.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/sample.hpp"
#include "power/golden.hpp"
#include "sim/perfsim.hpp"
#include "workload/workload.hpp"

namespace autopower::exp {

/// A golden power trace plus the per-window evaluation contexts.
struct TraceData {
  std::vector<core::EvalContext> windows;
  std::vector<double> golden_total;  ///< mW per window
  int window_cycles = 0;
  double total_cycles = 0.0;
};

/// Simulates the workload in fixed windows and evaluates golden power for
/// every window.
[[nodiscard]] TraceData build_trace(const sim::PerfSimulator& sim,
                                    const power::GoldenPowerModel& golden,
                                    const arch::HardwareConfig& cfg,
                                    const workload::WorkloadProfile& profile);

/// Table IV error metrics for one predicted trace.
struct TraceErrors {
  double max_power_error = 0.0;  ///< percent, |max_pred - max_gold| / max_gold
  double min_power_error = 0.0;  ///< percent
  double average_error = 0.0;    ///< percent, mean per-window APE
};

[[nodiscard]] TraceErrors trace_errors(std::span<const double> golden,
                                       std::span<const double> predicted);

}  // namespace autopower::exp
