// Accuracy summaries used throughout the evaluation benches and tests.
#pragma once

#include <span>
#include <string>

namespace autopower::exp {

/// The three accuracy numbers the paper reports.
struct Accuracy {
  double mape = 0.0;     ///< percent
  double r2 = 0.0;       ///< coefficient of determination
  double pearson = 0.0;  ///< correlation coefficient R
  std::size_t n = 0;

  [[nodiscard]] std::string to_string() const;
};

/// Computes MAPE / R^2 / Pearson over (actual, predicted).
[[nodiscard]] Accuracy compute_accuracy(std::span<const double> actual,
                                        std::span<const double> predicted);

}  // namespace autopower::exp
