// Experiment dataset — runs the full golden pipeline over the design
// space x workload grid once, and hands out training/evaluation views.
//
// Mirrors the paper's setup: 15 BOOM configurations (Table II) x 8
// riscv-tests workloads, with k "known" configurations used for training
// and the remaining configurations held out for evaluation.  Training
// configurations are spread across the design-space scale (the paper's
// 2-configuration experiment trains on the smallest and largest corners,
// cf. Table I using C1 and C15).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "core/sample.hpp"
#include "power/golden.hpp"
#include "power/report.hpp"
#include "sim/perfsim.hpp"

namespace autopower::exp {

/// One fully-evaluated (configuration, workload) grid point.
struct LabeledSample {
  core::EvalContext ctx;
  power::PowerResult golden;
};

/// The materialised experiment grid.
class ExperimentData {
 public:
  /// Runs the performance simulator and golden power flow over every
  /// (configuration, workload) pair.
  static ExperimentData build(const sim::PerfSimulator& sim,
                              const power::GoldenPowerModel& golden);

  [[nodiscard]] const std::vector<LabeledSample>& samples() const noexcept {
    return samples_;
  }

  /// Training contexts: every workload of the named configurations.
  [[nodiscard]] std::vector<core::EvalContext> contexts_of(
      std::span<const std::string> config_names) const;

  /// Evaluation samples: every grid point whose configuration is NOT in
  /// `config_names`.
  [[nodiscard]] std::vector<const LabeledSample*> samples_excluding(
      std::span<const std::string> config_names) const;

  /// Spread-selected k training configurations over the Table II scale
  /// (k=2 -> {C1, C15}; k=3 -> {C1, C8, C15}; ...).  Requires 2 <= k <= 15.
  [[nodiscard]] static std::vector<std::string> training_configs(int k);

 private:
  std::vector<LabeledSample> samples_;
};

}  // namespace autopower::exp
