// End-to-end comparison harness shared by the figure/table benchmarks.
//
// Encapsulates the protocol of paper Sec. III-B2: pick k spread training
// configurations, train AutoPower and the baselines on their 8 workloads,
// predict total power on every held-out (configuration, workload) pair,
// and summarise MAPE / R^2 / R per method.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "exp/accuracy.hpp"
#include "exp/dataset.hpp"

namespace autopower::exp {

/// Which methods a comparison run should include.
struct MethodSelection {
  bool autopower = true;
  bool mcpat_calib = true;
  bool mcpat_calib_component = true;
  bool autopower_minus = false;
};

/// One method's end-to-end accuracy plus its per-sample predictions
/// (actual/predicted aligned with the evaluation sample order).
struct MethodResult {
  std::string method;
  Accuracy accuracy;
  std::vector<double> actual;
  std::vector<double> predicted;
  std::vector<std::string> sample_names;  ///< "C3/dhrystone"
};

/// Trains the selected methods on `k_train` spread configurations and
/// evaluates total-power accuracy on the held-out configurations.
[[nodiscard]] std::vector<MethodResult> compare_methods(
    const ExperimentData& data, const power::GoldenPowerModel& golden,
    int k_train, const MethodSelection& selection = {});

/// Evaluates an arbitrary total-power predictor over held-out samples.
[[nodiscard]] MethodResult evaluate_predictor(
    const ExperimentData& data, std::span<const std::string> train_configs,
    const std::string& name,
    const std::function<double(const core::EvalContext&)>& predictor);

}  // namespace autopower::exp
