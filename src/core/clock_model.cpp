#include "core/clock_model.hpp"

#include <algorithm>

#include "core/features.hpp"
#include "util/error.hpp"

namespace autopower::core {

namespace {

/// Deduplicates configurations: structural sub-models (F_reg, F_gate) get
/// one sample per known configuration, not one per workload.
std::vector<const arch::HardwareConfig*> unique_configs(
    std::span<const EvalContext> samples) {
  std::vector<const arch::HardwareConfig*> out;
  for (const auto& s : samples) {
    if (std::find(out.begin(), out.end(), s.cfg) == out.end()) {
      out.push_back(s.cfg);
    }
  }
  return out;
}

}  // namespace

void ClockPowerModel::train(arch::ComponentKind c,
                            std::span<const EvalContext> samples,
                            const power::GoldenPowerModel& golden) {
  AP_REQUIRE(!samples.empty(), "clock model needs training samples");
  component_ = c;
  reg_model_ = ml::RidgeRegression(options_.ridge);
  gate_model_ = ml::RidgeRegression(options_.ridge);
  alpha_model_ = ml::GBTRegressor(options_.gbt);

  const auto h_names = feature_names(c, FeatureSpec::h());
  const auto he_names = feature_names(c, FeatureSpec::he());
  const double p_reg = golden.library().clock_pin_energy;

  // F_reg and F_gate: structural labels from the synthesized netlists of
  // the known configurations.
  ml::Dataset reg_data(h_names);
  ml::Dataset gate_data(h_names);
  for (const arch::HardwareConfig* cfg : unique_configs(samples)) {
    const auto& nl = golden.netlist_of(*cfg)[static_cast<std::size_t>(c)];
    const auto h = cfg->features_for(arch::component_hw_params(c));
    reg_data.add_sample(h, nl.register_count);
    gate_data.add_sample(h, nl.gating_rate);
  }
  reg_model_.fit(reg_data);
  gate_model_.fit(gate_data);

  // F_a': labels extracted from golden clock power via Eq. 7 inverted,
  //   alpha' = (P_clk - R (1 - g) p_reg) / (R g),
  // using the *known* R and g of the training configurations (they come
  // from the same netlists the labels were collected from).
  ml::Dataset alpha_data(he_names);
  for (const auto& s : samples) {
    const auto& nl = golden.netlist_of(*s.cfg)[static_cast<std::size_t>(c)];
    const double p_clk =
        golden.evaluate(*s.cfg, s.events).of(c).clock;
    const double rg = nl.register_count * nl.gating_rate;
    const double alpha_eff =
        rg > 1e-9
            ? std::max(0.0, (p_clk - nl.register_count *
                                         (1.0 - nl.gating_rate) * p_reg) /
                                rg)
            : 0.0;
    alpha_data.add_sample(
        feature_vector(c, FeatureSpec::he(), *s.cfg, s.events, s.program),
        alpha_eff);
  }
  if (options_.linear_alpha) {
    alpha_linear_model_ = ml::RidgeRegression(options_.ridge);
    alpha_linear_model_.fit(alpha_data);
  } else {
    alpha_model_.fit(alpha_data);
  }
  trained_ = true;
}

void ClockPowerModel::save(util::ArchiveWriter& out) const {
  out.write("clock.component", static_cast<std::int64_t>(component_));
  out.write("clock.trained", trained_);
  out.write("clock.linear_alpha", options_.linear_alpha);
  reg_model_.save(out);
  gate_model_.save(out);
  if (options_.linear_alpha) {
    alpha_linear_model_.save(out);
  } else {
    alpha_model_.save(out);
  }
}

void ClockPowerModel::load(util::ArchiveReader& in) {
  component_ =
      static_cast<arch::ComponentKind>(in.read_int("clock.component"));
  trained_ = in.read_bool("clock.trained");
  options_.linear_alpha = in.read_bool("clock.linear_alpha");
  reg_model_.load(in);
  gate_model_.load(in);
  if (options_.linear_alpha) {
    alpha_linear_model_.load(in);
  } else {
    alpha_model_.load(in);
  }
}

double ClockPowerModel::predict_register_count(
    const arch::HardwareConfig& cfg) const {
  if (!trained_) throw util::NotFitted("clock model not trained");
  return reg_model_.predict(
      cfg.features_for(arch::component_hw_params(component_)));
}

double ClockPowerModel::predict_gating_rate(
    const arch::HardwareConfig& cfg) const {
  if (!trained_) throw util::NotFitted("clock model not trained");
  return std::clamp(
      gate_model_.predict(
          cfg.features_for(arch::component_hw_params(component_))),
      0.0, 0.99);
}

double ClockPowerModel::predict_effective_active_rate(
    const EvalContext& ctx) const {
  if (!trained_) throw util::NotFitted("clock model not trained");
  const auto f = feature_vector(component_, FeatureSpec::he(), *ctx.cfg,
                                ctx.events, ctx.program);
  return options_.linear_alpha ? alpha_linear_model_.predict(f)
                               : alpha_model_.predict(f);
}

double ClockPowerModel::predict(const EvalContext& ctx) const {
  const double r = predict_register_count(*ctx.cfg);
  const double g = predict_gating_rate(*ctx.cfg);
  const double alpha_eff = predict_effective_active_rate(ctx);
  const double p_reg =
      techlib::TechLibrary::default_40nm().clock_pin_energy;
  // Eq. 7: P_clk = R (1 - g) p_reg + alpha' R g.
  return std::max(0.0, r * (1.0 - g) * p_reg + alpha_eff * r * g);
}

std::vector<double> ClockPowerModel::predict_batch(
    std::span<const EvalContext> ctxs) const {
  if (!trained_) throw util::NotFitted("clock model not trained");
  if (ctxs.empty()) return {};

  // alpha' for all contexts in one flattened-forest (or batched ridge)
  // pass; R and g go through the batched ridge path over one shared
  // row-major H matrix instead of re-assembling features per context.
  // Every batched predict is bit-identical to its per-context twin.
  const auto he_rows = feature_rows(component_, FeatureSpec::he(), ctxs);
  const std::size_t he_arity = he_rows.size() / ctxs.size();
  const std::vector<double> alpha =
      options_.linear_alpha
          ? alpha_linear_model_.predict_rows(he_rows, he_arity)
          : alpha_model_.predict_rows(he_rows, he_arity);

  const auto params = arch::component_hw_params(component_);
  std::vector<double> h_rows;
  h_rows.reserve(ctxs.size() * params.size());
  for (const auto& ctx : ctxs) {
    for (const arch::HwParam p : params) h_rows.push_back(ctx.cfg->value_d(p));
  }
  const std::vector<double> r_all =
      reg_model_.predict_rows(h_rows, params.size());
  std::vector<double> g_all = gate_model_.predict_rows(h_rows, params.size());

  const double p_reg = techlib::TechLibrary::default_40nm().clock_pin_energy;
  std::vector<double> out(ctxs.size());
  for (std::size_t i = 0; i < ctxs.size(); ++i) {
    const double r = r_all[i];
    const double g = std::clamp(g_all[i], 0.0, 0.99);
    out[i] = std::max(0.0, r * (1.0 - g) * p_reg + alpha[i] * r * g);
  }
  return out;
}

}  // namespace autopower::core
