#include "core/autopower.hpp"

#include <algorithm>
#include <exception>
#include <fstream>
#include <mutex>
#include <sstream>
#include <thread>

#include "util/archive.hpp"
#include "util/error.hpp"
#include "util/metrics.hpp"
#include "util/thread_pool.hpp"

namespace autopower::core {

namespace {

// Per-group sub-model fit timings plus the whole train() wall time;
// one histogram observation per sub-model fit (22 per group per train).
struct TrainMetrics {
  util::Histogram& train_ns;
  util::Histogram& clock_fit_ns;
  util::Histogram& sram_fit_ns;
  util::Histogram& logic_fit_ns;
  util::Counter& submodel_fits;
};

TrainMetrics& train_metrics() {
  auto& r = util::MetricsRegistry::global();
  static TrainMetrics m{r.histogram("core.train.train_ns"),
                        r.histogram("core.train.clock_fit_ns"),
                        r.histogram("core.train.sram_fit_ns"),
                        r.histogram("core.train.logic_fit_ns"),
                        r.counter("core.train.submodel_fits")};
  return m;
}

}  // namespace

void AutoPowerModel::train(std::span<const EvalContext> samples,
                           const power::GoldenPowerModel& golden,
                           std::size_t threads) {
  AP_REQUIRE(!samples.empty(), "AutoPower needs training samples");
  util::ScopedTimer train_timer(train_metrics().train_ns);
  // Never fan out past the physical core count: on a 1-core box the
  // pool's context switching costs more than the parallelism buys
  // (train_speedup 0.951 at --threads 4 before this clamp).  Results
  // are thread-count-invariant, so the clamp cannot change the model.
  threads = std::min<std::size_t>(
      threads, std::max(1u, std::thread::hardware_concurrency()));
  // Reset every slot up front (serially — cheap) so the fit tasks below
  // only ever touch their own component's models.
  for (arch::ComponentKind c : arch::all_components()) {
    const auto i = static_cast<std::size_t>(c);
    clock_[i] = ClockPowerModel(options_.clock);
    sram_[i] = SramPowerModel(options_.sram);
    logic_[i] = LogicPowerModel(options_.logic);
  }

  if (threads <= 1) {
    for (arch::ComponentKind c : arch::all_components()) {
      const auto i = static_cast<std::size_t>(c);
      {
        util::ScopedTimer t(train_metrics().clock_fit_ns);
        clock_[i].train(c, samples, golden);
      }
      {
        util::ScopedTimer t(train_metrics().sram_fit_ns);
        sram_[i].train(c, samples, golden);
      }
      {
        util::ScopedTimer t(train_metrics().logic_fit_ns);
        logic_[i].train(c, samples, golden);
      }
      train_metrics().submodel_fits.add(3);
    }
    trained_ = true;
    refresh_fingerprint();
    return;
  }

  // 22 components x 3 groups = 66 independent fits.  Each task writes one
  // pre-reset slot and nothing else, so the trained model does not depend
  // on scheduling: archives are byte-identical at any thread count.  The
  // pool's workers swallow exceptions (a serving-layer contract), so each
  // task captures its own failure; the first one is rethrown here.
  util::ThreadPool pool(threads);
  std::mutex err_mu;
  std::exception_ptr first_error;
  const auto guarded = [&err_mu, &first_error](auto&& fit) {
    try {
      fit();
    } catch (...) {
      std::lock_guard lock(err_mu);
      if (!first_error) first_error = std::current_exception();
    }
  };
  for (arch::ComponentKind c : arch::all_components()) {
    const auto i = static_cast<std::size_t>(c);
    pool.submit([&, c, i] {
      guarded([&] {
        util::ScopedTimer t(train_metrics().clock_fit_ns);
        clock_[i].train(c, samples, golden);
      });
      train_metrics().submodel_fits.inc();
    });
    pool.submit([&, c, i] {
      guarded([&] {
        util::ScopedTimer t(train_metrics().sram_fit_ns);
        sram_[i].train(c, samples, golden);
      });
      train_metrics().submodel_fits.inc();
    });
    pool.submit([&, c, i] {
      guarded([&] {
        util::ScopedTimer t(train_metrics().logic_fit_ns);
        logic_[i].train(c, samples, golden);
      });
      train_metrics().submodel_fits.inc();
    });
  }
  pool.wait_idle();
  pool.shutdown();
  if (first_error) std::rethrow_exception(first_error);
  trained_ = true;
  refresh_fingerprint();
}

void AutoPowerModel::refresh_fingerprint() {
  // Fingerprint the archive bytes, not the in-memory layout, so a trained
  // model and a load() of its saved archive carry the same identity token.
  std::ostringstream archive;
  save(archive);
  fingerprint_ = util::content_fingerprint(archive.str());
}

void AutoPowerModel::save(std::ostream& out) const {
  AP_REQUIRE(trained_, "cannot save an untrained AutoPower model");
  util::ArchiveWriter w(out);
  w.write("autopower.format", std::int64_t{1});
  w.write("autopower.components",
          static_cast<std::int64_t>(arch::kNumComponents));
  for (arch::ComponentKind c : arch::all_components()) {
    const auto i = static_cast<std::size_t>(c);
    clock_[i].save(w);
    sram_[i].save(w);
    logic_[i].save(w);
  }
}

void AutoPowerModel::load(std::istream& in) {
  // Slurp the whole archive first: the fingerprint must hash exactly the
  // bytes that were parsed, and hashing a replay of the same buffer keeps
  // the two trivially in sync.
  std::ostringstream buf;
  buf << in.rdbuf();
  AP_REQUIRE(!in.bad(), "failed reading AutoPower archive stream");
  const std::string bytes = buf.str();
  std::istringstream replay(bytes);
  util::ArchiveReader r(replay);
  AP_REQUIRE(r.read_int("autopower.format") == 1,
             "unsupported AutoPower archive format");
  AP_REQUIRE(r.read_int("autopower.components") ==
                 static_cast<std::int64_t>(arch::kNumComponents),
             "archive component count does not match this build");
  for (arch::ComponentKind c : arch::all_components()) {
    const auto i = static_cast<std::size_t>(c);
    clock_[i].load(r);
    sram_[i].load(r);
    logic_[i].load(r);
  }
  trained_ = true;
  fingerprint_ = util::content_fingerprint(bytes);
}

void AutoPowerModel::save_to_file(const std::string& path) const {
  std::ofstream out(path);
  AP_REQUIRE(out.good(), "cannot open file for writing: " + path);
  save(out);
  AP_REQUIRE(out.good(), "failed writing model file: " + path);
}

void AutoPowerModel::load_from_file(const std::string& path) {
  std::ifstream in(path);
  AP_REQUIRE(in.good(), "cannot open model file: " + path);
  load(in);
}

power::PowerResult AutoPowerModel::predict(const EvalContext& ctx) const {
  return predict_batch({&ctx, 1}).front();
}

std::vector<power::PowerResult> AutoPowerModel::predict_batch(
    std::span<const EvalContext> ctxs) const {
  if (ctxs.empty()) return {};  // nothing to do, even untrained
  AP_REQUIRE(trained_, "AutoPower not trained");
  std::vector<power::PowerResult> out(ctxs.size());
  for (auto& r : out) r.components.resize(arch::kNumComponents);

  // Component-major: each component's group models see the whole batch at
  // once, so every GBT walks its flattened forest in one predict_rows
  // pass instead of once per context.
  std::vector<double> reg(ctxs.size());
  std::vector<double> comb(ctxs.size());
  for (arch::ComponentKind c : arch::all_components()) {
    const auto i = static_cast<std::size_t>(c);
    const auto clock = clock_[i].predict_batch(ctxs);
    const auto sram = sram_[i].predict_batch(ctxs);
    logic_[i].predict_batch(ctxs, reg, comb);
    for (std::size_t j = 0; j < ctxs.size(); ++j) {
      power::ComponentPower& cp = out[j].components[i];
      cp.component = c;
      cp.groups.clock = clock[j];
      cp.groups.sram = sram[j];
      cp.groups.logic_register = reg[j];
      cp.groups.logic_comb = comb[j];
    }
  }
  return out;
}

double AutoPowerModel::predict_total(const EvalContext& ctx) const {
  return predict(ctx).total();
}

std::vector<double> AutoPowerModel::predict_total_batch(
    std::span<const EvalContext> ctxs) const {
  if (ctxs.empty()) return {};
  AP_REQUIRE(trained_, "AutoPower not trained");
  // Same component-major evaluation as predict_batch, but each context
  // keeps one running PowerGroups instead of a 22-component vector.  The
  // per-field accumulation in component order followed by
  // clock+sram+logic_register+logic_comb reproduces
  // PowerResult::totals().total() exactly, so every element is
  // bit-identical to predict(ctxs[i]).total().
  std::vector<power::PowerGroups> acc(ctxs.size());
  std::vector<double> reg(ctxs.size());
  std::vector<double> comb(ctxs.size());
  for (arch::ComponentKind c : arch::all_components()) {
    const auto i = static_cast<std::size_t>(c);
    const auto clock = clock_[i].predict_batch(ctxs);
    const auto sram = sram_[i].predict_batch(ctxs);
    logic_[i].predict_batch(ctxs, reg, comb);
    for (std::size_t j = 0; j < ctxs.size(); ++j) {
      power::PowerGroups groups;
      groups.clock = clock[j];
      groups.sram = sram[j];
      groups.logic_register = reg[j];
      groups.logic_comb = comb[j];
      acc[j] += groups;
    }
  }
  std::vector<double> out;
  out.reserve(ctxs.size());
  for (const power::PowerGroups& groups : acc) out.push_back(groups.total());
  return out;
}

std::vector<double> AutoPowerModel::predict_trace(
    std::span<const EvalContext> windows) const {
  const auto results = predict_batch(windows);
  std::vector<double> out;
  out.reserve(results.size());
  for (const auto& r : results) out.push_back(r.total());
  return out;
}

const ClockPowerModel& AutoPowerModel::clock_model(
    arch::ComponentKind c) const {
  return clock_[static_cast<std::size_t>(c)];
}

const SramPowerModel& AutoPowerModel::sram_model(
    arch::ComponentKind c) const {
  return sram_[static_cast<std::size_t>(c)];
}

const LogicPowerModel& AutoPowerModel::logic_model(
    arch::ComponentKind c) const {
  return logic_[static_cast<std::size_t>(c)];
}

}  // namespace autopower::core
