#include "core/autopower.hpp"

#include <fstream>

#include "util/archive.hpp"
#include "util/error.hpp"

namespace autopower::core {

void AutoPowerModel::train(std::span<const EvalContext> samples,
                           const power::GoldenPowerModel& golden) {
  AP_REQUIRE(!samples.empty(), "AutoPower needs training samples");
  for (arch::ComponentKind c : arch::all_components()) {
    const auto i = static_cast<std::size_t>(c);
    clock_[i] = ClockPowerModel(options_.clock);
    sram_[i] = SramPowerModel(options_.sram);
    logic_[i] = LogicPowerModel(options_.logic);
    clock_[i].train(c, samples, golden);
    sram_[i].train(c, samples, golden);
    logic_[i].train(c, samples, golden);
  }
  trained_ = true;
}

void AutoPowerModel::save(std::ostream& out) const {
  AP_REQUIRE(trained_, "cannot save an untrained AutoPower model");
  util::ArchiveWriter w(out);
  w.write("autopower.format", std::int64_t{1});
  w.write("autopower.components",
          static_cast<std::int64_t>(arch::kNumComponents));
  for (arch::ComponentKind c : arch::all_components()) {
    const auto i = static_cast<std::size_t>(c);
    clock_[i].save(w);
    sram_[i].save(w);
    logic_[i].save(w);
  }
}

void AutoPowerModel::load(std::istream& in) {
  util::ArchiveReader r(in);
  AP_REQUIRE(r.read_int("autopower.format") == 1,
             "unsupported AutoPower archive format");
  AP_REQUIRE(r.read_int("autopower.components") ==
                 static_cast<std::int64_t>(arch::kNumComponents),
             "archive component count does not match this build");
  for (arch::ComponentKind c : arch::all_components()) {
    const auto i = static_cast<std::size_t>(c);
    clock_[i].load(r);
    sram_[i].load(r);
    logic_[i].load(r);
  }
  trained_ = true;
}

void AutoPowerModel::save_to_file(const std::string& path) const {
  std::ofstream out(path);
  AP_REQUIRE(out.good(), "cannot open file for writing: " + path);
  save(out);
  AP_REQUIRE(out.good(), "failed writing model file: " + path);
}

void AutoPowerModel::load_from_file(const std::string& path) {
  std::ifstream in(path);
  AP_REQUIRE(in.good(), "cannot open model file: " + path);
  load(in);
}

power::PowerResult AutoPowerModel::predict(const EvalContext& ctx) const {
  AP_REQUIRE(trained_, "AutoPower not trained");
  power::PowerResult out;
  out.components.reserve(arch::kNumComponents);
  for (arch::ComponentKind c : arch::all_components()) {
    const auto i = static_cast<std::size_t>(c);
    power::ComponentPower cp;
    cp.component = c;
    cp.groups.clock = clock_[i].predict(ctx);
    cp.groups.sram = sram_[i].predict(ctx);
    cp.groups.logic_register = logic_[i].predict_register_power(ctx);
    cp.groups.logic_comb = logic_[i].predict_comb_power(ctx);
    out.components.push_back(cp);
  }
  return out;
}

double AutoPowerModel::predict_total(const EvalContext& ctx) const {
  return predict(ctx).total();
}

std::vector<double> AutoPowerModel::predict_trace(
    std::span<const EvalContext> windows) const {
  std::vector<double> out;
  out.reserve(windows.size());
  for (const auto& w : windows) out.push_back(predict_total(w));
  return out;
}

const ClockPowerModel& AutoPowerModel::clock_model(
    arch::ComponentKind c) const {
  return clock_[static_cast<std::size_t>(c)];
}

const SramPowerModel& AutoPowerModel::sram_model(
    arch::ComponentKind c) const {
  return sram_[static_cast<std::size_t>(c)];
}

const LogicPowerModel& AutoPowerModel::logic_model(
    arch::ComponentKind c) const {
  return logic_[static_cast<std::size_t>(c)];
}

}  // namespace autopower::core
