// Feature assembly for AutoPower's sub-models.
//
// Three feature families, matching the paper:
//   * H  — the component's hardware parameters (Table III row),
//   * E  — the component's event-parameter rates from the performance
//          simulator,
//   * P  — program-level features that are microarchitecture independent
//          (AutoPower is the first to include these; they hedge against
//          performance-simulator inaccuracy, Sec. II-B).
#pragma once

#include <span>
#include <string>
#include <vector>

#include "arch/component.hpp"
#include "arch/events.hpp"
#include "arch/params.hpp"
#include "core/sample.hpp"
#include "workload/workload.hpp"

namespace autopower::core {

/// Feature schema selector for a component sub-model.
struct FeatureSpec {
  bool hardware = true;       ///< include H
  bool events = false;        ///< include E
  bool program = false;       ///< include P

  /// Hardware-only models (F_reg, F_gate, F_sta, hardware scaling).
  [[nodiscard]] static FeatureSpec h() { return {true, false, false}; }
  /// Activity models on (H, E) (F_alpha', F_act, F_var).
  [[nodiscard]] static FeatureSpec he() { return {true, true, false}; }
  /// SRAM activity models on (H, E, P).
  [[nodiscard]] static FeatureSpec hep() { return {true, true, true}; }
};

/// Feature names for one component under a spec (stable order: H, E, P).
[[nodiscard]] std::vector<std::string> feature_names(arch::ComponentKind c,
                                                     const FeatureSpec& spec);

/// Feature vector for one component and one evaluation context.
[[nodiscard]] std::vector<double> feature_vector(
    arch::ComponentKind c, const FeatureSpec& spec,
    const arch::HardwareConfig& cfg, const arch::EventVector& events,
    const workload::ProgramFeatures& program);

/// Appends the same values to `out` without intermediate vectors — the
/// building block feature_rows uses to assemble batches allocation-free
/// per sample.
void feature_vector_into(arch::ComponentKind c, const FeatureSpec& spec,
                         const arch::HardwareConfig& cfg,
                         const arch::EventVector& events,
                         const workload::ProgramFeatures& program,
                         std::vector<double>& out);

/// Row-major feature matrix for one component across many contexts — the
/// input layout ml::GBTRegressor::predict_rows consumes.  Row i is exactly
/// feature_vector(c, spec, ctxs[i]...).
[[nodiscard]] std::vector<double> feature_rows(
    arch::ComponentKind c, const FeatureSpec& spec,
    std::span<const EvalContext> ctxs);

}  // namespace autopower::core
