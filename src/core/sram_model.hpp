// SRAM power model (paper Sec. II-B, Fig. 3).
//
// Follows the four-level hierarchy Component -> SRAM Position ->
// SRAM Block -> SRAM Macro with a top-down approach:
//
//   1. feature transfer: an SRAM Position inherits the H and E (and
//      program-level P) features of its component;
//   2. hardware model: the scaling-pattern model infers the block
//      width/depth/count from hardware parameters (core/scaling_model);
//   3. activity model: GBT regressors on (H, E, P) predict the block-level
//      read and (mask-weighted) write frequencies;
//   4. macro-level mapping: the VLSI flow's deterministic rule decomposes
//      the predicted block into macros; per-macro frequency is the block
//      frequency over N_col (Eq. 9); power follows Eq. 10 with the
//      pin-toggle constant C estimated from golden power on the training
//      configurations.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "arch/component.hpp"
#include "core/sample.hpp"
#include "core/scaling_model.hpp"
#include "ml/gbt.hpp"
#include "power/golden.hpp"

namespace autopower::core {

/// Hyper-parameters of the SRAM sub-models.
struct SramModelOptions {
  ml::GbtOptions gbt{
      .num_rounds = 120,
      .learning_rate = 0.15,
      .tree = {.max_depth = 3, .lambda = 1.0, .gamma = 0.0,
               .min_child_weight = 1.0},
      .nonnegative_prediction = true};
  /// Include program-level features in the activity model (the paper's
  /// novelty; switchable for the ablation benchmark).
  bool program_features = true;
};

/// SRAM power model for a single component (all its SRAM Positions).
class SramPowerModel {
 public:
  SramPowerModel() = default;
  explicit SramPowerModel(SramModelOptions options) : options_(options) {}

  void train(arch::ComponentKind c, std::span<const EvalContext> samples,
             const power::GoldenPowerModel& golden);

  /// Predicted SRAM power of the component (mW), Eq. 10 summed over
  /// positions.
  [[nodiscard]] double predict(const EvalContext& ctx) const;

  /// Batched Eq. 10 over many contexts: per-position read/write
  /// frequencies go through the GBTs' flattened predict_rows path.
  /// Bit-identical to predict() per context.
  [[nodiscard]] std::vector<double> predict_batch(
      std::span<const EvalContext> ctxs) const;

  /// Predicted block shape of one position (hardware model output),
  /// for the Table I example and the ~0-MAPE hardware-model check.
  [[nodiscard]] BlockPrediction predict_block(
      const arch::HardwareConfig& cfg, std::string_view position) const;

  /// Names of the positions this component owns.
  [[nodiscard]] std::vector<std::string> position_names() const;

  [[nodiscard]] bool trained() const noexcept { return trained_; }

  /// Serialization (see util/archive.hpp).
  void save(util::ArchiveWriter& out) const;
  void load(util::ArchiveReader& in);

 private:
  struct PositionModel {
    std::string name;
    ScalingPatternModel hardware;
    ml::GBTRegressor read_model;
    ml::GBTRegressor write_model;
    double pin_constant = 0.0;  ///< C of Eq. 10, per block (mW)
  };

  arch::ComponentKind component_{};
  SramModelOptions options_;
  std::vector<PositionModel> positions_;
  bool trained_ = false;
};

}  // namespace autopower::core
