// AutoPower — the paper's primary contribution.
//
// Fully automated, few-shot architecture-level power modeling by power
// group decoupling: per component, independent models for the clock, SRAM
// and logic power groups (each itself decoupled into structural ridge
// sub-models and activity GBT sub-models).  Train on as few as two known
// configurations; predict per-component, per-group power for any
// configuration/workload — including per-50-cycle windows for time-based
// power traces (paper Sec. III-B5).
//
// Typical use:
//
//   sim::PerfSimulator sim;                    // gem5 stand-in
//   power::GoldenPowerModel golden;            // VLSI-flow stand-in
//   auto train = exp::make_contexts(sim, {"C1", "C15"}, workloads);
//   core::AutoPowerModel model;
//   model.train(train, golden);
//   auto prediction = model.predict(ctx);      // PowerResult, mW
#pragma once

#include <array>
#include <iosfwd>
#include <span>
#include <string>

#include "core/clock_model.hpp"
#include "core/logic_model.hpp"
#include "core/sample.hpp"
#include "core/sram_model.hpp"
#include "power/report.hpp"

namespace autopower::core {

/// Hyper-parameters for all of AutoPower's sub-models.
struct AutoPowerOptions {
  ClockModelOptions clock;
  SramModelOptions sram;
  LogicModelOptions logic;
};

/// The end-to-end AutoPower model: 22 components x 3 power groups.
///
/// Thread safety: train(), load() and the file wrappers mutate the model
/// and must not run concurrently with anything else.  train() may itself
/// fan the independent sub-model fits across an internal worker pool
/// (`threads` parameter); each task writes a disjoint per-component slot,
/// so the trained model — and hence its saved archive — is byte-identical
/// at any thread count.  Once training or loading has completed, every
/// const method — predict(), predict_batch(), predict_total(),
/// predict_trace(), the per-component model accessors — only reads
/// immutable state and is safe to call concurrently from any number of
/// threads on one shared instance (the serving layer in src/serve/ relies
/// on this: a model is published as shared_ptr<const AutoPowerModel> and
/// queried by a whole thread pool).
class AutoPowerModel {
 public:
  AutoPowerModel() = default;
  explicit AutoPowerModel(AutoPowerOptions options) : options_(options) {}

  /// Trains every per-component group model.  `samples` should cover the
  /// known configurations x training workloads; golden labels are read
  /// from the golden flow (synthesis reports, RTL activity, power sim).
  /// With `threads > 1` the 22 x 3 independent sub-model fits run on a
  /// worker pool; results land in fixed per-component slots, so the model
  /// is identical (archives byte-equal) at any thread count.
  void train(std::span<const EvalContext> samples,
             const power::GoldenPowerModel& golden, std::size_t threads = 1);

  /// Full per-component, per-group power prediction (mW).
  [[nodiscard]] power::PowerResult predict(const EvalContext& ctx) const;

  /// Batched prediction: one PowerResult per context, evaluated
  /// component-major so every GBT sub-model makes a single pass over its
  /// flattened forest for the whole batch.  Element i is bit-identical to
  /// predict(ctxs[i]).
  [[nodiscard]] std::vector<power::PowerResult> predict_batch(
      std::span<const EvalContext> ctxs) const;

  /// Total core power (mW).
  [[nodiscard]] double predict_total(const EvalContext& ctx) const;

  /// Batched totals: element i is bit-identical to
  /// predict(ctxs[i]).total(), evaluated component-major like
  /// predict_batch but holding only one PowerGroups accumulator per
  /// context instead of the full 22-component breakdown — the scoring
  /// path for surrogate-driven search loops that rank thousands of
  /// candidates per generation and never look at per-component power.
  [[nodiscard]] std::vector<double> predict_total_batch(
      std::span<const EvalContext> ctxs) const;

  /// Per-window total power for a time-based power trace.
  [[nodiscard]] std::vector<double> predict_trace(
      std::span<const EvalContext> windows) const;

  // Per-component group models, for the Fig. 7 / Fig. 8 studies.
  [[nodiscard]] const ClockPowerModel& clock_model(
      arch::ComponentKind c) const;
  [[nodiscard]] const SramPowerModel& sram_model(
      arch::ComponentKind c) const;
  [[nodiscard]] const LogicPowerModel& logic_model(
      arch::ComponentKind c) const;

  [[nodiscard]] bool trained() const noexcept { return trained_; }

  /// Content fingerprint of this model's serialized archive (16 hex chars),
  /// set by train() and load().  Equal fingerprints mean byte-identical
  /// archives, so the serving layer keys every memo on it: two models — or
  /// two versions of one model across a hot-swap — can never alias cache
  /// entries.  Empty only for a default-constructed, untrained model.
  [[nodiscard]] const std::string& fingerprint() const noexcept {
    return fingerprint_;
  }

  /// Serializes the fully-trained model (all 22 x 3 sub-models).
  void save(std::ostream& out) const;
  /// Restores a model previously written by save().
  void load(std::istream& in);
  /// File-based convenience wrappers.
  void save_to_file(const std::string& path) const;
  void load_from_file(const std::string& path);

 private:
  AutoPowerOptions options_;
  std::array<ClockPowerModel, arch::kNumComponents> clock_;
  std::array<SramPowerModel, arch::kNumComponents> sram_;
  std::array<LogicPowerModel, arch::kNumComponents> logic_;
  bool trained_ = false;
  std::string fingerprint_;

  void refresh_fingerprint();
};

}  // namespace autopower::core
