#include "core/features.hpp"

namespace autopower::core {

std::vector<std::string> feature_names(arch::ComponentKind c,
                                       const FeatureSpec& spec) {
  std::vector<std::string> out;
  if (spec.hardware) {
    for (arch::HwParam p : arch::component_hw_params(c)) {
      out.push_back("H." + std::string(arch::hw_param_name(p)));
    }
  }
  if (spec.events) {
    auto e = arch::component_event_feature_names(c);
    out.insert(out.end(), e.begin(), e.end());
  }
  if (spec.program) {
    auto p = workload::ProgramFeatures::names();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::vector<double> feature_vector(arch::ComponentKind c,
                                   const FeatureSpec& spec,
                                   const arch::HardwareConfig& cfg,
                                   const arch::EventVector& events,
                                   const workload::ProgramFeatures& program) {
  std::vector<double> out;
  if (spec.hardware) {
    auto h = cfg.features_for(arch::component_hw_params(c));
    out.insert(out.end(), h.begin(), h.end());
  }
  if (spec.events) {
    auto e = arch::component_event_features(c, events);
    out.insert(out.end(), e.begin(), e.end());
  }
  if (spec.program) {
    auto p = program.as_vector();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

std::vector<double> feature_rows(arch::ComponentKind c,
                                 const FeatureSpec& spec,
                                 std::span<const EvalContext> ctxs) {
  std::vector<double> rows;
  for (const auto& ctx : ctxs) {
    const auto f =
        feature_vector(c, spec, *ctx.cfg, ctx.events, ctx.program);
    if (rows.empty()) rows.reserve(f.size() * ctxs.size());
    rows.insert(rows.end(), f.begin(), f.end());
  }
  return rows;
}

}  // namespace autopower::core
