#include "core/features.hpp"

namespace autopower::core {

std::vector<std::string> feature_names(arch::ComponentKind c,
                                       const FeatureSpec& spec) {
  std::vector<std::string> out;
  if (spec.hardware) {
    for (arch::HwParam p : arch::component_hw_params(c)) {
      out.push_back("H." + std::string(arch::hw_param_name(p)));
    }
  }
  if (spec.events) {
    auto e = arch::component_event_feature_names(c);
    out.insert(out.end(), e.begin(), e.end());
  }
  if (spec.program) {
    auto p = workload::ProgramFeatures::names();
    out.insert(out.end(), p.begin(), p.end());
  }
  return out;
}

void feature_vector_into(arch::ComponentKind c, const FeatureSpec& spec,
                         const arch::HardwareConfig& cfg,
                         const arch::EventVector& events,
                         const workload::ProgramFeatures& program,
                         std::vector<double>& out) {
  // Appends the H / E values straight from their scalar accessors — no
  // per-family temporary vectors — so assembling a row-major batch is
  // one contiguous fill of the destination buffer.
  if (spec.hardware) {
    for (arch::HwParam p : arch::component_hw_params(c)) {
      out.push_back(cfg.value_d(p));
    }
  }
  if (spec.events) {
    for (arch::EventKind e : arch::component_events(c)) {
      out.push_back(events.rate(e));
    }
  }
  if (spec.program) {
    const auto p = program.as_vector();
    out.insert(out.end(), p.begin(), p.end());
  }
}

std::vector<double> feature_vector(arch::ComponentKind c,
                                   const FeatureSpec& spec,
                                   const arch::HardwareConfig& cfg,
                                   const arch::EventVector& events,
                                   const workload::ProgramFeatures& program) {
  std::vector<double> out;
  feature_vector_into(c, spec, cfg, events, program, out);
  return out;
}

std::vector<double> feature_rows(arch::ComponentKind c,
                                 const FeatureSpec& spec,
                                 std::span<const EvalContext> ctxs) {
  std::vector<double> rows;
  bool first = true;
  for (const auto& ctx : ctxs) {
    feature_vector_into(c, spec, *ctx.cfg, ctx.events, ctx.program, rows);
    if (first) {
      rows.reserve(rows.size() * ctxs.size());
      first = false;
    }
  }
  return rows;
}

}  // namespace autopower::core
