#include "core/logic_model.hpp"

#include <algorithm>
#include <map>

#include "core/features.hpp"
#include "util/error.hpp"

namespace autopower::core {

void LogicPowerModel::train(arch::ComponentKind c,
                            std::span<const EvalContext> samples,
                            const power::GoldenPowerModel& golden) {
  AP_REQUIRE(!samples.empty(), "logic model needs training samples");
  component_ = c;
  reg_count_model_ = ml::RidgeRegression(options_.ridge);
  reg_act_model_ = ml::GBTRegressor(options_.gbt);
  comb_stable_model_ = ml::RidgeRegression(options_.ridge);
  comb_var_model_ = ml::GBTRegressor(options_.gbt);

  const auto h_names = feature_names(c, FeatureSpec::h());
  const auto he_names = feature_names(c, FeatureSpec::he());

  // Golden per-sample logic power, gathered once.
  std::vector<double> reg_power(samples.size());
  std::vector<double> comb_power(samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto groups =
        golden.evaluate(*samples[i].cfg, samples[i].events).of(c);
    reg_power[i] = groups.logic_register;
    comb_power[i] = groups.logic_comb;
  }

  // --- Register power: F_reg(H) on netlist register counts ---------------
  ml::Dataset reg_count_data(h_names);
  std::map<const arch::HardwareConfig*, double> cfg_comb_avg;
  std::map<const arch::HardwareConfig*, int> cfg_count;
  for (std::size_t i = 0; i < samples.size(); ++i) {
    cfg_comb_avg[samples[i].cfg] += comb_power[i];
    cfg_count[samples[i].cfg] += 1;
  }
  for (auto& [cfg, acc] : cfg_comb_avg) acc /= cfg_count[cfg];

  for (const auto& [cfg, unused] : cfg_comb_avg) {
    (void)unused;
    const auto& nl = golden.netlist_of(*cfg)[static_cast<std::size_t>(c)];
    reg_count_data.add_sample(
        cfg->features_for(arch::component_hw_params(c)),
        nl.register_count);
  }
  reg_count_model_.fit(reg_count_data);

  // --- F_act(H, E): golden register power per register -------------------
  ml::Dataset reg_act_data(he_names);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    const auto& nl = golden.netlist_of(*s.cfg)[static_cast<std::size_t>(c)];
    const double label =
        nl.register_count > 1e-9 ? reg_power[i] / nl.register_count : 0.0;
    reg_act_data.add_sample(
        feature_vector(c, FeatureSpec::he(), *s.cfg, s.events, s.program),
        label);
  }
  reg_act_model_.fit(reg_act_data);

  // --- F_sta(H): average combinational power across training workloads ---
  ml::Dataset stable_data(h_names);
  for (const auto& [cfg, avg] : cfg_comb_avg) {
    stable_data.add_sample(cfg->features_for(arch::component_hw_params(c)),
                           avg);
  }
  comb_stable_model_.fit(stable_data);

  // --- F_var(H, E): ratio of combinational power to the stable power -----
  ml::Dataset var_data(he_names);
  for (std::size_t i = 0; i < samples.size(); ++i) {
    const auto& s = samples[i];
    const double sta = cfg_comb_avg[s.cfg];
    const double label = sta > 1e-9 ? comb_power[i] / sta : 1.0;
    var_data.add_sample(
        feature_vector(c, FeatureSpec::he(), *s.cfg, s.events, s.program),
        label);
  }
  comb_var_model_.fit(var_data);
  trained_ = true;
}

void LogicPowerModel::save(util::ArchiveWriter& out) const {
  out.write("logic.component", static_cast<std::int64_t>(component_));
  out.write("logic.trained", trained_);
  reg_count_model_.save(out);
  reg_act_model_.save(out);
  comb_stable_model_.save(out);
  comb_var_model_.save(out);
}

void LogicPowerModel::load(util::ArchiveReader& in) {
  component_ =
      static_cast<arch::ComponentKind>(in.read_int("logic.component"));
  trained_ = in.read_bool("logic.trained");
  reg_count_model_.load(in);
  reg_act_model_.load(in);
  comb_stable_model_.load(in);
  comb_var_model_.load(in);
}

double LogicPowerModel::predict_register_power(const EvalContext& ctx) const {
  AP_REQUIRE(trained_, "logic model not trained");
  const double r = reg_count_model_.predict(
      ctx.cfg->features_for(arch::component_hw_params(component_)));
  const double act = reg_act_model_.predict(feature_vector(
      component_, FeatureSpec::he(), *ctx.cfg, ctx.events, ctx.program));
  return std::max(0.0, r * act);  // Eq. 11
}

double LogicPowerModel::predict_comb_power(const EvalContext& ctx) const {
  AP_REQUIRE(trained_, "logic model not trained");
  const double sta = comb_stable_model_.predict(
      ctx.cfg->features_for(arch::component_hw_params(component_)));
  const double var = comb_var_model_.predict(feature_vector(
      component_, FeatureSpec::he(), *ctx.cfg, ctx.events, ctx.program));
  return std::max(0.0, sta * var);  // Eq. 12
}

double LogicPowerModel::predict(const EvalContext& ctx) const {
  return predict_register_power(ctx) + predict_comb_power(ctx);
}

void LogicPowerModel::predict_batch(std::span<const EvalContext> ctxs,
                                    std::span<double> reg_out,
                                    std::span<double> comb_out) const {
  AP_REQUIRE(trained_, "logic model not trained");
  AP_REQUIRE(reg_out.size() == ctxs.size() && comb_out.size() == ctxs.size(),
             "logic predict_batch output spans must match context count");
  if (ctxs.empty()) return;

  const auto rows = feature_rows(component_, FeatureSpec::he(), ctxs);
  const std::size_t arity =
      feature_names(component_, FeatureSpec::he()).size();
  const auto act = reg_act_model_.predict_rows(rows, arity);
  const auto var = comb_var_model_.predict_rows(rows, arity);

  // The structural ridge models run batched too, over one shared H
  // matrix — bit-identical to the per-context predict(h) calls.
  const auto params = arch::component_hw_params(component_);
  std::vector<double> h_rows;
  h_rows.reserve(ctxs.size() * params.size());
  for (const auto& ctx : ctxs) {
    for (const arch::HwParam p : params) h_rows.push_back(ctx.cfg->value_d(p));
  }
  const auto reg_count = reg_count_model_.predict_rows(h_rows, params.size());
  const auto comb_stable =
      comb_stable_model_.predict_rows(h_rows, params.size());

  for (std::size_t i = 0; i < ctxs.size(); ++i) {
    reg_out[i] = std::max(0.0, reg_count[i] * act[i]);
    comb_out[i] = std::max(0.0, comb_stable[i] * var[i]);
  }
}

}  // namespace autopower::core
