// One (configuration, workload-window) evaluation context.
//
// Everything an architecture-level power model is allowed to see at
// prediction time: the hardware parameters, the performance-simulator
// event counters, and the program-level features.  Golden labels are NOT
// part of the context; trainers obtain them from the golden flow
// separately (the equivalent of reading synthesis and power-simulation
// reports for the known configurations).
#pragma once

#include <string>

#include "arch/events.hpp"
#include "arch/params.hpp"
#include "workload/workload.hpp"

namespace autopower::core {

struct EvalContext {
  const arch::HardwareConfig* cfg = nullptr;
  std::string workload;
  workload::ProgramFeatures program;
  arch::EventVector events;
};

}  // namespace autopower::core
