#include "core/scaling_model.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "util/error.hpp"

namespace autopower::core {

double ProportionalLaw::evaluate(const arch::HardwareConfig& cfg) const {
  double x = 1.0;
  for (arch::HwParam p : params) x *= cfg.value_d(p);
  return k * x;
}

std::string ProportionalLaw::to_string() const {
  std::string out = std::to_string(k);
  for (arch::HwParam p : params) {
    out += " * ";
    out += std::string(arch::hw_param_name(p));
  }
  return out;
}

ProportionalLaw fit_proportional_law(
    std::span<const arch::HwParam> params,
    std::span<const arch::HardwareConfig* const> configs,
    std::span<const double> values) {
  AP_REQUIRE(configs.size() == values.size() && !configs.empty(),
             "need matching non-empty configs/values");
  AP_REQUIRE(params.size() <= 20, "too many parameters to enumerate");

  ProportionalLaw best;
  double best_error = std::numeric_limits<double>::infinity();
  std::size_t best_arity = params.size() + 1;

  const std::size_t subsets = 1ULL << params.size();
  std::vector<double> predictor(configs.size());
  for (std::size_t mask = 0; mask < subsets; ++mask) {
    // Build the product predictor for this combination.
    for (std::size_t i = 0; i < configs.size(); ++i) {
      double x = 1.0;
      for (std::size_t b = 0; b < params.size(); ++b) {
        if (mask & (1ULL << b)) x *= configs[i]->value_d(params[b]);
      }
      predictor[i] = x;
    }
    // Least-squares through the origin.
    double num = 0.0;
    double den = 0.0;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      num += predictor[i] * values[i];
      den += predictor[i] * predictor[i];
    }
    if (den < 1e-24) continue;
    const double k = num / den;

    double max_err = 0.0;
    for (std::size_t i = 0; i < configs.size(); ++i) {
      const double pred = k * predictor[i];
      const double denom = std::max(std::abs(values[i]), 1e-9);
      max_err = std::max(max_err, std::abs(pred - values[i]) / denom);
    }

    const std::size_t arity =
        static_cast<std::size_t>(std::popcount(mask));
    // Prefer strictly better fits; among near-ties prefer fewer factors
    // (the constant law wins over spurious products on degenerate data).
    const bool better = max_err < best_error - 1e-9 ||
                        (max_err < best_error + 1e-9 && arity < best_arity);
    if (better) {
      best_error = max_err;
      best_arity = arity;
      best.k = k;
      best.params.clear();
      for (std::size_t b = 0; b < params.size(); ++b) {
        if (mask & (1ULL << b)) best.params.push_back(params[b]);
      }
      best.max_rel_error = max_err;
    }
  }
  AP_ASSERT_MSG(std::isfinite(best_error), "no proportional law fitted");
  return best;
}

void ScalingPatternModel::fit(
    std::span<const arch::HwParam> params,
    std::span<const BlockObservation> observations) {
  AP_REQUIRE(!observations.empty(),
             "scaling model needs at least one observation");

  std::vector<const arch::HardwareConfig*> configs;
  std::vector<double> capacity;
  std::vector<double> throughput;
  std::vector<double> width;
  configs.reserve(observations.size());
  for (const auto& obs : observations) {
    AP_REQUIRE(obs.cfg != nullptr, "observation without configuration");
    AP_REQUIRE(obs.width > 0 && obs.depth > 0 && obs.count > 0,
               "observation with non-positive block shape");
    configs.push_back(obs.cfg);
    capacity.push_back(static_cast<double>(obs.width) * obs.depth *
                       obs.count);
    throughput.push_back(static_cast<double>(obs.width) * obs.count);
    width.push_back(static_cast<double>(obs.width));
  }

  capacity_ = fit_proportional_law(params, configs, capacity);
  throughput_ = fit_proportional_law(params, configs, throughput);
  width_ = fit_proportional_law(params, configs, width);
  fitted_ = true;
}

namespace {

void save_law(util::ArchiveWriter& out, const ProportionalLaw& law) {
  out.write("law.k", law.k);
  out.write("law.err", law.max_rel_error);
  std::vector<std::int64_t> ids;
  ids.reserve(law.params.size());
  for (arch::HwParam p : law.params) {
    ids.push_back(static_cast<std::int64_t>(p));
  }
  out.write("law.params", ids);
}

ProportionalLaw load_law(util::ArchiveReader& in) {
  ProportionalLaw law;
  law.k = in.read_double("law.k");
  law.max_rel_error = in.read_double("law.err");
  for (std::int64_t id : in.read_ints("law.params")) {
    AP_REQUIRE(id >= 0 && id < static_cast<std::int64_t>(arch::kNumHwParams),
               "corrupt scaling-law archive: bad parameter id");
    law.params.push_back(static_cast<arch::HwParam>(id));
  }
  return law;
}

}  // namespace

void ScalingPatternModel::save(util::ArchiveWriter& out) const {
  out.write("scaling.fitted", fitted_);
  save_law(out, capacity_);
  save_law(out, throughput_);
  save_law(out, width_);
}

void ScalingPatternModel::load(util::ArchiveReader& in) {
  fitted_ = in.read_bool("scaling.fitted");
  capacity_ = load_law(in);
  throughput_ = load_law(in);
  width_ = load_law(in);
  // A model that claims to be fitted must carry usable laws: fit() always
  // produces a positive finite coefficient (block shapes are >= 1 and the
  // predictors positive).  A default-constructed law (k = 0) here would
  // silently predict 1x1x1 blocks for every configuration.
  if (fitted_) {
    for (const ProportionalLaw* law : {&capacity_, &throughput_, &width_}) {
      AP_REQUIRE(std::isfinite(law->k) && law->k > 0.0,
                 "corrupt scaling-law archive: fitted model with "
                 "unfitted law");
    }
  }
}

BlockPrediction ScalingPatternModel::predict(
    const arch::HardwareConfig& cfg) const {
  AP_REQUIRE(fitted_, "ScalingPatternModel::predict before fit");
  const double cap = capacity_.evaluate(cfg);
  const double thr = throughput_.evaluate(cfg);
  const double wid = width_.evaluate(cfg);

  BlockPrediction out;
  out.width = std::max(1, static_cast<int>(std::llround(wid)));
  out.count = std::max(
      1, static_cast<int>(std::llround(thr / std::max(wid, 1e-9))));
  out.depth = std::max(
      1, static_cast<int>(std::llround(cap / std::max(thr, 1e-9))));
  return out;
}

}  // namespace autopower::core
