// Clock power model (paper Sec. II-A, Eq. 1-8).
//
// Decouples the clock power of one component into three sub-models:
//   * F_reg  — register count R, ridge regression on H,
//   * F_gate — gating rate g, ridge regression on H,
//   * F_a'   — effective active rate alpha', XGBoost-style GBT on (H, E).
//
// Prediction assembles Eq. 7:
//   P_clk = R (1 - g) p_reg + alpha' R g
// with p_reg looked up from the technology library.  alpha' (Eq. 6)
// absorbs the gating-cell term and, because its labels are extracted from
// golden clock power, also the component's cell-mix deviation from the
// library-nominal p_reg — which is precisely why the paper trains alpha'
// rather than the raw active rate.
#pragma once

#include <span>
#include <vector>

#include "arch/component.hpp"
#include "core/sample.hpp"
#include "ml/gbt.hpp"
#include "ml/linear.hpp"
#include "power/golden.hpp"

namespace autopower::core {

/// Hyper-parameters of the clock sub-models.
struct ClockModelOptions {
  ml::RidgeOptions ridge{.lambda = 1e-4, .nonnegative_prediction = true};
  ml::GbtOptions gbt{
      .num_rounds = 120,
      .learning_rate = 0.15,
      .tree = {.max_depth = 3, .lambda = 1.0, .gamma = 0.0,
               .min_child_weight = 1.0},
      .nonnegative_prediction = true};
  /// Ablation switch: model alpha' with ridge instead of GBT (the paper
  /// argues the correlation is too complex for a linear model; the
  /// bench_abl_submodel_choice benchmark quantifies that claim).
  bool linear_alpha = false;
};

/// Clock power model for a single component.
class ClockPowerModel {
 public:
  ClockPowerModel() = default;
  explicit ClockPowerModel(ClockModelOptions options) : options_(options) {}

  /// Trains the three sub-models.  `samples` are the training
  /// (configuration, workload) contexts; golden labels (register counts,
  /// gating rates, clock power) are read from the golden flow.
  void train(arch::ComponentKind c, std::span<const EvalContext> samples,
             const power::GoldenPowerModel& golden);

  /// Predicted clock power (mW) via Eq. 7.
  [[nodiscard]] double predict(const EvalContext& ctx) const;

  /// Batched Eq. 7 over many contexts: alpha' is evaluated through the
  /// GBT's flattened predict_rows path.  Bit-identical to predict() per
  /// context.
  [[nodiscard]] std::vector<double> predict_batch(
      std::span<const EvalContext> ctxs) const;

  // Sub-model outputs, exposed for the Fig. 7 sub-model accuracy study.
  [[nodiscard]] double predict_register_count(
      const arch::HardwareConfig& cfg) const;
  [[nodiscard]] double predict_gating_rate(
      const arch::HardwareConfig& cfg) const;
  [[nodiscard]] double predict_effective_active_rate(
      const EvalContext& ctx) const;

  [[nodiscard]] bool trained() const noexcept { return trained_; }

  /// Serialization (see util/archive.hpp).
  void save(util::ArchiveWriter& out) const;
  void load(util::ArchiveReader& in);

 private:
  arch::ComponentKind component_{};
  ClockModelOptions options_;
  ml::RidgeRegression reg_model_;   // F_reg(H)
  ml::RidgeRegression gate_model_;  // F_gate(H)
  ml::GBTRegressor alpha_model_;    // F_a'(H, E), default
  ml::RidgeRegression alpha_linear_model_;  // F_a' ablation variant
  bool trained_ = false;
};

}  // namespace autopower::core
