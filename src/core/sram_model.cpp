#include "core/sram_model.hpp"

#include <algorithm>

#include "core/features.hpp"
#include "techlib/sram_macro.hpp"
#include "util/error.hpp"

namespace autopower::core {

namespace {

std::vector<const arch::HardwareConfig*> unique_configs(
    std::span<const EvalContext> samples) {
  std::vector<const arch::HardwareConfig*> out;
  for (const auto& s : samples) {
    if (std::find(out.begin(), out.end(), s.cfg) == out.end()) {
      out.push_back(s.cfg);
    }
  }
  return out;
}

}  // namespace

void SramPowerModel::train(arch::ComponentKind c,
                           std::span<const EvalContext> samples,
                           const power::GoldenPowerModel& golden) {
  AP_REQUIRE(!samples.empty(), "SRAM model needs training samples");
  component_ = c;
  positions_.clear();

  const auto configs = unique_configs(samples);
  const auto& first_netlist = golden.netlist_of(*configs.front());
  const auto& first_positions =
      first_netlist[static_cast<std::size_t>(c)].sram_positions;
  if (first_positions.empty()) {
    trained_ = true;  // flop-based component: zero SRAM power
    return;
  }

  const FeatureSpec spec = options_.program_features ? FeatureSpec::hep()
                                                     : FeatureSpec::he();
  const auto names = feature_names(c, spec);

  for (std::size_t pi = 0; pi < first_positions.size(); ++pi) {
    PositionModel pm;
    pm.name = first_positions[pi].name;
    pm.read_model = ml::GBTRegressor(options_.gbt);
    pm.write_model = ml::GBTRegressor(options_.gbt);

    // --- Hardware model: block observations across known configs --------
    std::vector<BlockObservation> obs;
    for (const arch::HardwareConfig* cfg : configs) {
      const auto& pos = golden.netlist_of(
          *cfg)[static_cast<std::size_t>(c)].sram_positions[pi];
      AP_ASSERT_MSG(pos.name == pm.name,
                    "SRAM position order differs across configurations");
      obs.push_back({cfg, pos.block_width, pos.block_depth,
                     pos.block_count});
    }
    pm.hardware.fit(arch::component_hw_params(c), obs);

    // --- Activity models: labels from RTL-simulation traces -------------
    ml::Dataset read_data(names);
    ml::Dataset write_data(names);
    for (const auto& s : samples) {
      const auto act = golden.activity().sram_activity(*s.cfg, c, pm.name,
                                                       s.events);
      const auto f = feature_vector(c, spec, *s.cfg, s.events, s.program);
      read_data.add_sample(f, act.read_freq);
      write_data.add_sample(f, act.write_freq);
    }
    pm.read_model.fit(read_data);
    pm.write_model.fit(write_data);

    // --- Pin-toggle constant C (Eq. 10): residual of the golden position
    // power after the read/write term, averaged over training samples.
    double c_sum = 0.0;
    for (const auto& s : samples) {
      const auto& pos = golden.netlist_of(
          *s.cfg)[static_cast<std::size_t>(c)].sram_positions[pi];
      const auto act = golden.activity().sram_activity(*s.cfg, c, pm.name,
                                                       s.events);
      const auto mapping = techlib::map_block_to_macros(
          golden.macro_library(), pos.block_width, pos.block_depth);
      const double rw = golden.library().power_mw(
          act.read_freq * mapping.per_row * mapping.macro.read_energy +
          act.write_freq * mapping.per_row * mapping.macro.write_energy);
      const double golden_power =
          golden.sram_position_power(*s.cfg, c, pos, s.events);
      c_sum += golden_power / pos.block_count - rw;
    }
    pm.pin_constant =
        std::max(0.0, c_sum / static_cast<double>(samples.size()));

    positions_.push_back(std::move(pm));
  }
  trained_ = true;
}

void SramPowerModel::save(util::ArchiveWriter& out) const {
  out.write("sram.component", static_cast<std::int64_t>(component_));
  out.write("sram.trained", trained_);
  out.write("sram.program_features", options_.program_features);
  out.write("sram.num_positions",
            static_cast<std::int64_t>(positions_.size()));
  for (const auto& pm : positions_) {
    out.write("sram.position", pm.name);
    out.write("sram.pin_constant", pm.pin_constant);
    pm.hardware.save(out);
    pm.read_model.save(out);
    pm.write_model.save(out);
  }
}

void SramPowerModel::load(util::ArchiveReader& in) {
  component_ =
      static_cast<arch::ComponentKind>(in.read_int("sram.component"));
  trained_ = in.read_bool("sram.trained");
  options_.program_features = in.read_bool("sram.program_features");
  const auto n = in.read_int("sram.num_positions");
  AP_REQUIRE(n >= 0 && n < 64, "corrupt SRAM-model archive");
  positions_.assign(static_cast<std::size_t>(n), PositionModel{});
  for (auto& pm : positions_) {
    pm.name = in.read_token("sram.position");
    pm.pin_constant = in.read_double("sram.pin_constant");
    pm.hardware.load(in);
    pm.read_model.load(in);
    pm.write_model.load(in);
  }
}

double SramPowerModel::predict(const EvalContext& ctx) const {
  AP_REQUIRE(trained_, "SRAM model not trained");
  if (positions_.empty()) return 0.0;

  const FeatureSpec spec = options_.program_features ? FeatureSpec::hep()
                                                     : FeatureSpec::he();
  const auto f =
      feature_vector(component_, spec, *ctx.cfg, ctx.events, ctx.program);
  const auto& macros = techlib::SramMacroLibrary::default_40nm();
  const auto& lib = techlib::TechLibrary::default_40nm();

  double total = 0.0;
  for (const auto& pm : positions_) {
    const BlockPrediction block = pm.hardware.predict(*ctx.cfg);
    const auto mapping =
        techlib::map_block_to_macros(macros, block.width, block.depth);
    const double f_read = pm.read_model.predict(f);
    const double f_write = pm.write_model.predict(f);
    // Eq. 9 + Eq. 10: one row of macros per access, plus the constant C.
    const double rw = lib.power_mw(
        f_read * mapping.per_row * mapping.macro.read_energy +
        f_write * mapping.per_row * mapping.macro.write_energy);
    total += block.count * (rw + pm.pin_constant);
  }
  return std::max(0.0, total);
}

std::vector<double> SramPowerModel::predict_batch(
    std::span<const EvalContext> ctxs) const {
  AP_REQUIRE(trained_, "SRAM model not trained");
  if (ctxs.empty()) return {};
  std::vector<double> out(ctxs.size(), 0.0);
  if (positions_.empty()) return out;

  const FeatureSpec spec = options_.program_features ? FeatureSpec::hep()
                                                     : FeatureSpec::he();
  const auto rows = feature_rows(component_, spec, ctxs);
  const std::size_t arity = feature_names(component_, spec).size();
  const auto& macros = techlib::SramMacroLibrary::default_40nm();
  const auto& lib = techlib::TechLibrary::default_40nm();

  // Position-major so each position's two forests make one batched pass;
  // out[i] accumulates positions in declaration order, the same order
  // predict() sums them, so totals are bit-identical.
  for (const auto& pm : positions_) {
    const auto f_read = pm.read_model.predict_rows(rows, arity);
    const auto f_write = pm.write_model.predict_rows(rows, arity);
    for (std::size_t i = 0; i < ctxs.size(); ++i) {
      const BlockPrediction block = pm.hardware.predict(*ctxs[i].cfg);
      const auto mapping =
          techlib::map_block_to_macros(macros, block.width, block.depth);
      const double rw = lib.power_mw(
          f_read[i] * mapping.per_row * mapping.macro.read_energy +
          f_write[i] * mapping.per_row * mapping.macro.write_energy);
      out[i] += block.count * (rw + pm.pin_constant);
    }
  }
  for (double& v : out) v = std::max(0.0, v);
  return out;
}

BlockPrediction SramPowerModel::predict_block(
    const arch::HardwareConfig& cfg, std::string_view position) const {
  AP_REQUIRE(trained_, "SRAM model not trained");
  for (const auto& pm : positions_) {
    if (pm.name == position) return pm.hardware.predict(cfg);
  }
  throw util::InvalidArgument("unknown SRAM position: " +
                              std::string(position));
}

std::vector<std::string> SramPowerModel::position_names() const {
  std::vector<std::string> out;
  out.reserve(positions_.size());
  for (const auto& pm : positions_) out.push_back(pm.name);
  return out;
}

}  // namespace autopower::core
