// Logic power model (paper Sec. II-C, Eq. 11-12).
//
// Decouples the remaining (non-clock, non-SRAM) power of a component into:
//   * register power:       P_reg  = F_reg(H) * F_act(H, E)   (Eq. 11)
//     — a ridge hardware model for the register count times a GBT activity
//     model whose label is the golden register power per register;
//   * combinational power:  P_comb = F_sta(H) * F_var(H, E)   (Eq. 12)
//     — a ridge "stable power" model trained on the per-configuration
//     average combinational power across the training workloads, times a
//     GBT "variation" model on the ratio P_comb / P_sta.
#pragma once

#include <span>
#include <vector>

#include "arch/component.hpp"
#include "core/sample.hpp"
#include "ml/gbt.hpp"
#include "ml/linear.hpp"
#include "power/golden.hpp"

namespace autopower::core {

/// Hyper-parameters of the logic sub-models.
struct LogicModelOptions {
  ml::RidgeOptions ridge{.lambda = 1e-4, .nonnegative_prediction = true};
  ml::GbtOptions gbt{
      .num_rounds = 120,
      .learning_rate = 0.15,
      .tree = {.max_depth = 3, .lambda = 1.0, .gamma = 0.0,
               .min_child_weight = 1.0},
      .nonnegative_prediction = true};
};

/// Logic power model for a single component.
class LogicPowerModel {
 public:
  LogicPowerModel() = default;
  explicit LogicPowerModel(LogicModelOptions options) : options_(options) {}

  void train(arch::ComponentKind c, std::span<const EvalContext> samples,
             const power::GoldenPowerModel& golden);

  /// Predicted logic power (register + combinational, mW).
  [[nodiscard]] double predict(const EvalContext& ctx) const;

  /// Batched Eq. 11/12 over many contexts, filling per-context register
  /// and combinational power.  Both GBT activity models share one feature
  /// matrix and go through the flattened predict_rows path; bit-identical
  /// to the per-context getters.
  void predict_batch(std::span<const EvalContext> ctxs,
                     std::span<double> reg_out,
                     std::span<double> comb_out) const;

  [[nodiscard]] double predict_register_power(const EvalContext& ctx) const;
  [[nodiscard]] double predict_comb_power(const EvalContext& ctx) const;

  [[nodiscard]] bool trained() const noexcept { return trained_; }

  /// Serialization (see util/archive.hpp).
  void save(util::ArchiveWriter& out) const;
  void load(util::ArchiveReader& in);

 private:
  arch::ComponentKind component_{};
  LogicModelOptions options_;
  ml::RidgeRegression reg_count_model_;  // F_reg(H)
  ml::GBTRegressor reg_act_model_;       // F_act(H, E)
  ml::RidgeRegression comb_stable_model_;  // F_sta(H)
  ml::GBTRegressor comb_var_model_;        // F_var(H, E)
  bool trained_ = false;
};

}  // namespace autopower::core
