// Scaling-pattern-based SRAM Block hardware model (paper Sec. II-B,
// worked example in Table I).
//
// Infers the width/depth/count of a component's SRAM Blocks from hardware
// parameters alone, using the two scaling patterns the paper observes:
// capacity scales linearly with a product of hardware parameters, and
// throughput (width x count) likewise.  For every quantity the model tries
// *all* combinations (subsets, including the constant) of the component's
// hardware parameters, fits a directly-proportional function to the known
// configurations, and keeps the combination with the smallest error.
//
// From the fitted capacity, throughput and width laws it derives
//   count = throughput / width,   depth = capacity / throughput,
// exactly as the paper's IFU-meta example derives Count = 1 and
// Depth = 8 * DecodeWidth.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

#include "arch/params.hpp"
#include "util/archive.hpp"

namespace autopower::core {

/// One fitted directly-proportional law: value = k * prod(params).
struct ProportionalLaw {
  double k = 0.0;
  std::vector<arch::HwParam> params;  ///< empty = constant law
  double max_rel_error = 0.0;         ///< on the training configurations

  /// Evaluates the law on a configuration.
  [[nodiscard]] double evaluate(const arch::HardwareConfig& cfg) const;

  /// Human-readable form, e.g. "240 * FetchWidth * DecodeWidth".
  [[nodiscard]] std::string to_string() const;
};

/// A training observation: a configuration plus the observed block shape.
struct BlockObservation {
  const arch::HardwareConfig* cfg = nullptr;
  int width = 0;
  int depth = 0;
  int count = 0;
};

/// Predicted block shape for an unseen configuration.
struct BlockPrediction {
  int width = 0;
  int depth = 0;
  int count = 0;
};

/// The scaling-pattern hardware model for one SRAM Position.
class ScalingPatternModel {
 public:
  /// Fits capacity / throughput / width laws from the known
  /// configurations.  `params` is the component's hardware-parameter set
  /// (Table III); all its subsets are tried.  Needs >= 1 observation.
  void fit(std::span<const arch::HwParam> params,
           std::span<const BlockObservation> observations);

  /// Predicts the block shape on an unseen configuration.
  [[nodiscard]] BlockPrediction predict(
      const arch::HardwareConfig& cfg) const;

  [[nodiscard]] bool fitted() const noexcept { return fitted_; }
  [[nodiscard]] const ProportionalLaw& capacity_law() const noexcept {
    return capacity_;
  }
  [[nodiscard]] const ProportionalLaw& throughput_law() const noexcept {
    return throughput_;
  }
  [[nodiscard]] const ProportionalLaw& width_law() const noexcept {
    return width_;
  }

  /// Serialization (see util/archive.hpp).
  void save(util::ArchiveWriter& out) const;
  void load(util::ArchiveReader& in);

 private:
  ProportionalLaw capacity_;
  ProportionalLaw throughput_;
  ProportionalLaw width_;
  bool fitted_ = false;
};

/// Fits value = k * prod(params in subset) over observations, trying every
/// subset of `params` (including the empty/constant subset), and returns
/// the law with minimal maximum relative error (ties: fewer parameters).
/// Exposed for unit tests and the Table I example benchmark.
[[nodiscard]] ProportionalLaw fit_proportional_law(
    std::span<const arch::HwParam> params,
    std::span<const arch::HardwareConfig* const> configs,
    std::span<const double> values);

}  // namespace autopower::core
