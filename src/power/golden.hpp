// Golden power model — the PrimePower stand-in.
//
// Computes per-component, per-group power bottom-up from the synthetic
// netlist (src/netlist), the technology library (src/techlib) and the
// golden activity model (power/activity):
//
//   clock  = clock-tree pin power with gating (ungated + gated + gating
//            cells), using the *per-component* pin energies of the netlist,
//   sram   = per-macro read/write energy x golden frequency, plus address/
//            data pin toggling and macro leakage,
//   logic  = register data power + combinational toggle power, with
//            per-component cell-mix spreads.
//
// The same entry point evaluates whole workloads and 50-cycle windows, so
// golden time-based power traces come from the identical code path as the
// average-power labels.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <vector>

#include "arch/events.hpp"
#include "arch/params.hpp"
#include "netlist/synthesis.hpp"
#include "power/activity.hpp"
#include "power/report.hpp"
#include "techlib/sram_macro.hpp"
#include "techlib/techlib.hpp"

namespace autopower::power {

/// The golden power evaluation flow (synthesis + library + power sim).
class GoldenPowerModel {
 public:
  /// Uses the default 40nm library and default model options.
  GoldenPowerModel();

  GoldenPowerModel(netlist::SynthesisModel synthesis,
                   GoldenActivityModel activity);

  /// Golden power of every component for one evaluation window (whole
  /// workload aggregate or a single trace window).
  [[nodiscard]] PowerResult evaluate(const arch::HardwareConfig& cfg,
                                     const arch::EventVector& events) const;

  /// Golden power trace: one PowerResult per window.
  [[nodiscard]] std::vector<PowerResult> evaluate_trace(
      const arch::HardwareConfig& cfg,
      const std::vector<arch::EventVector>& windows) const;

  /// Golden power (mW) of all blocks of one SRAM Position — what a power
  /// simulation reports per memory instance.  AutoPower uses this on
  /// *training* configurations to estimate the pin-toggle constant C of
  /// Eq. 10.
  [[nodiscard]] double sram_position_power(
      const arch::HardwareConfig& cfg, arch::ComponentKind c,
      const netlist::SramPositionInfo& position,
      const arch::EventVector& events) const;

  /// The synthesized netlist of a configuration (memoised; Table III
  /// order).  Exposed because label collection reads netlist quantities.
  /// Thread-safe: the memo is guarded by a mutex, and std::map never
  /// invalidates the returned references, so parallel training may call
  /// this concurrently.
  [[nodiscard]] const std::vector<netlist::ComponentNetlist>& netlist_of(
      const arch::HardwareConfig& cfg) const;

  [[nodiscard]] const netlist::SynthesisModel& synthesis() const noexcept {
    return synthesis_;
  }
  [[nodiscard]] const GoldenActivityModel& activity() const noexcept {
    return activity_;
  }
  [[nodiscard]] const techlib::TechLibrary& library() const noexcept {
    return lib_;
  }
  [[nodiscard]] const techlib::SramMacroLibrary& macro_library()
      const noexcept {
    return macros_;
  }

 private:
  netlist::SynthesisModel synthesis_;
  GoldenActivityModel activity_;
  const techlib::TechLibrary& lib_;
  const techlib::SramMacroLibrary& macros_;
  mutable std::mutex netlist_mu_;  ///< guards netlist_memo_
  mutable std::map<std::uint64_t, std::vector<netlist::ComponentNetlist>>
      netlist_memo_;
};

}  // namespace autopower::power
