#include "power/golden.hpp"

#include <algorithm>
#include <cmath>

#include "util/rng.hpp"

namespace autopower::power {

namespace {

using arch::ComponentKind;
using arch::EventVector;
using arch::HardwareConfig;

std::uint64_t config_key(const HardwareConfig& cfg) {
  std::uint64_t h = util::hash_str("netlist-memo");
  for (arch::HwParam p : arch::all_hw_params()) {
    h = util::hash_combine(h, static_cast<std::uint64_t>(cfg.value(p)));
  }
  return h;
}

/// Per-component cell-mix spread for logic energies (golden-only detail).
double logic_energy_spread(ComponentKind c, std::string_view tag) {
  return util::noise_factor(
      util::hash_combine(util::hash_str(tag), static_cast<std::uint64_t>(c)),
      0.10);
}

}  // namespace

GoldenPowerModel::GoldenPowerModel()
    : GoldenPowerModel(netlist::SynthesisModel{}, GoldenActivityModel{}) {}

GoldenPowerModel::GoldenPowerModel(netlist::SynthesisModel synthesis,
                                   GoldenActivityModel activity)
    : synthesis_(synthesis),
      activity_(activity),
      lib_(techlib::TechLibrary::default_40nm()),
      macros_(techlib::SramMacroLibrary::default_40nm()) {}

const std::vector<netlist::ComponentNetlist>& GoldenPowerModel::netlist_of(
    const HardwareConfig& cfg) const {
  const std::uint64_t key = config_key(cfg);
  // std::map nodes are stable, so the returned reference stays valid after
  // the lock is released even as other threads insert.
  std::lock_guard lock(netlist_mu_);
  auto it = netlist_memo_.find(key);
  if (it == netlist_memo_.end()) {
    it = netlist_memo_.emplace(key, synthesis_.synthesize_all(cfg)).first;
  }
  return it->second;
}

PowerResult GoldenPowerModel::evaluate(const HardwareConfig& cfg,
                                       const EventVector& events) const {
  const auto& netlists = netlist_of(cfg);
  PowerResult result;
  result.components.reserve(arch::kNumComponents);

  for (arch::ComponentKind c : arch::all_components()) {
    const auto& nl = netlists[static_cast<std::size_t>(c)];
    const ComponentActivity act =
        activity_.component_activity(cfg, c, events);

    ComponentPower cp;
    cp.component = c;

    // --- Clock group (Eq. 1-4 structure, with golden pin energies) -------
    const double r_count = nl.register_count;
    const double g = nl.gating_rate;
    const double p_reg = nl.avg_clock_pin_energy;
    const double p_latch = nl.avg_gating_latch_energy;
    const double ungated_pin = r_count * (1.0 - g) * p_reg;
    const double gated_pin = act.gated_active_rate * r_count * g * p_reg;
    const double gating_cell = nl.gating_cell_ratio * r_count * g * p_latch;
    cp.groups.clock = lib_.power_mw(ungated_pin + gated_pin + gating_cell);

    // --- SRAM group -------------------------------------------------------
    double sram_power = 0.0;
    for (const auto& pos : nl.sram_positions) {
      sram_power += sram_position_power(cfg, c, pos, events);
    }
    cp.groups.sram = sram_power;

    // --- Logic group ------------------------------------------------------
    const double reg_spread = logic_energy_spread(c, "regmix");
    const double comb_spread = logic_energy_spread(c, "combmix");
    cp.groups.logic_register = lib_.power_mw(
        r_count * (lib_.register_leakage +
                   act.register_toggle_rate * lib_.register_toggle_energy *
                       reg_spread));
    cp.groups.logic_comb = lib_.power_mw(
        nl.comb_cell_count *
        (lib_.comb_leakage +
         act.comb_toggle_rate * lib_.comb_toggle_energy * comb_spread));

    result.components.push_back(cp);
  }
  return result;
}

double GoldenPowerModel::sram_position_power(
    const HardwareConfig& cfg, arch::ComponentKind c,
    const netlist::SramPositionInfo& pos,
    const arch::EventVector& events) const {
  const SramBlockActivity sa =
      activity_.sram_activity(cfg, c, pos.name, events);
  const auto mapping = techlib::map_block_to_macros(macros_, pos.block_width,
                                                    pos.block_depth);
  // One access activates one row of macros (Eq. 9: per-macro frequency is
  // the block frequency divided by N_col).
  const double reads_per_cycle = sa.read_freq * mapping.per_row;
  const double writes_per_cycle = sa.write_freq * mapping.per_row;
  double e = reads_per_cycle * mapping.macro.read_energy +
             writes_per_cycle * mapping.macro.write_energy;
  // Address/data pin toggling: small, weakly activity-dependent (the
  // paper's model treats it as the constant C).
  e += 0.0006 * pos.block_width *
       (0.35 + 0.65 * std::min(1.0, sa.read_freq + sa.write_freq));
  // Macro leakage.
  e += mapping.total() * mapping.macro.leakage;
  return lib_.power_mw(e * pos.block_count);
}

std::vector<PowerResult> GoldenPowerModel::evaluate_trace(
    const HardwareConfig& cfg,
    const std::vector<EventVector>& windows) const {
  std::vector<PowerResult> out;
  out.reserve(windows.size());
  for (const auto& w : windows) out.push_back(evaluate(cfg, w));
  return out;
}

}  // namespace autopower::power
