#include "power/activity.hpp"

#include <algorithm>
#include <bit>
#include <cmath>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace autopower::power {

namespace {

using arch::ComponentKind;
using arch::EventKind;
using arch::EventVector;
using arch::HardwareConfig;
using arch::HwParam;

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

/// Saturation kink seen in real waveforms: banks of registers switch from
/// mostly-gated to mostly-active once the utilisation crosses the steady
/// pipelining threshold.  Deliberately non-linear (logistic) — this is the
/// kind of structure tree models capture and linear models cannot.
double saturation(double u) { return 1.0 / (1.0 + std::exp(-12.0 * (u - 0.55))); }

/// Waveform-noise key: varies with the component, the tag, and the actual
/// event values of the window, so labels carry small deterministic jitter
/// across workloads and across trace windows.
std::uint64_t wave_key(ComponentKind c, std::string_view tag,
                       const EventVector& events) {
  std::uint64_t h = util::hash_str(tag);
  h = util::hash_combine(h, static_cast<std::uint64_t>(c));
  h = util::hash_combine(
      h, std::bit_cast<std::uint64_t>(events[EventKind::kCycles]));
  h = util::hash_combine(
      h, std::bit_cast<std::uint64_t>(events[EventKind::kInstructions]));
  h = util::hash_combine(
      h, std::bit_cast<std::uint64_t>(events[EventKind::kDcacheAccesses]));
  h = util::hash_combine(
      h, std::bit_cast<std::uint64_t>(events[EventKind::kFetchPackets]));
  return h;
}

}  // namespace

ComponentActivity GoldenActivityModel::component_activity(
    const HardwareConfig& cfg, ComponentKind c,
    const EventVector& ev) const {
  const double dw = cfg.value_d(HwParam::kDecodeWidth);
  const double mfw = cfg.value_d(HwParam::kMemFpIssueWidth);
  const double iw = cfg.value_d(HwParam::kIntIssueWidth);
  const double lq = cfg.value_d(HwParam::kLdqStqEntry);
  const double rob = cfg.value_d(HwParam::kRobEntry);
  const double fbe = cfg.value_d(HwParam::kFetchBufferEntry);
  const double mshr = cfg.value_d(HwParam::kMshrEntry);

  const double ipc_util = clamp01(ev.rate(EventKind::kInstructions) / dw);
  const double miss_per_branch =
      ev[EventKind::kBranches] > 0.0
          ? ev[EventKind::kBpMispredicts] / ev[EventKind::kBranches]
          : 0.0;

  double alpha = 0.1;      // gated-register active rate
  double data_util = 0.3;  // secondary measure driving data toggling
  switch (c) {
    case ComponentKind::kBpTage: {
      const double u = clamp01(ev.rate(EventKind::kBpLookups));
      alpha = 0.08 + 0.55 * std::pow(u, 0.8) + 0.18 * miss_per_branch;
      data_util = u;
      break;
    }
    case ComponentKind::kBpBtb: {
      const double u = clamp01(ev.rate(EventKind::kBpLookups));
      alpha = 0.07 + 0.50 * std::pow(u, 0.9) + 0.10 * miss_per_branch;
      data_util = u;
      break;
    }
    case ComponentKind::kBpOthers: {
      const double u = clamp01(ev.rate(EventKind::kFetchPackets));
      alpha = 0.10 + 0.45 * u;
      data_util = u;
      break;
    }
    case ComponentKind::kICacheTagArray:
    case ComponentKind::kICacheDataArray: {
      const double u = clamp01(ev.rate(EventKind::kICacheAccesses));
      alpha = 0.05 + 0.60 * std::pow(u, 0.85);
      data_util = u;
      break;
    }
    case ComponentKind::kICacheOthers: {
      const double u = clamp01(ev.rate(EventKind::kICacheAccesses));
      const double refill = clamp01(ev.rate(EventKind::kICacheMisses) * 8.0);
      alpha = 0.06 + 0.45 * u + 0.25 * refill;
      data_util = u;
      break;
    }
    case ComponentKind::kRnu: {
      const double u = clamp01(ev.rate(EventKind::kRenameUops) / dw);
      alpha = 0.06 + 0.56 * std::pow(u, 1.1) + 0.14 * saturation(u);
      data_util = u;
      break;
    }
    case ComponentKind::kRob: {
      const double u = clamp01(ev.rate(EventKind::kDispatchedUops) / dw);
      const double occ = clamp01(ev.rate(EventKind::kRobOccupancy) / rob);
      alpha = 0.05 + 0.38 * u + 0.22 * std::pow(occ, 1.2) +
              0.12 * saturation(u);
      data_util = u;
      break;
    }
    case ComponentKind::kRegfile: {
      const double ports = 2.5 * (iw + 2.0 * mfw);
      const double u = clamp01((ev.rate(EventKind::kRegfileReads) +
                                ev.rate(EventKind::kRegfileWrites)) /
                               ports);
      alpha = 0.04 + 0.62 * std::pow(u, 0.9) + 0.14 * saturation(u);
      data_util = u;
      break;
    }
    case ComponentKind::kDCacheTagArray:
    case ComponentKind::kDCacheDataArray: {
      const double u =
          clamp01(ev.rate(EventKind::kDcacheAccesses) / mfw);
      alpha = 0.05 + 0.65 * std::pow(u, 0.8);
      data_util = u;
      break;
    }
    case ComponentKind::kDCacheOthers: {
      const double u =
          clamp01(ev.rate(EventKind::kDcacheAccesses) / mfw);
      const double wb = clamp01(ev.rate(EventKind::kDcacheWritebacks) * 10.0);
      alpha = 0.06 + 0.50 * u + 0.20 * wb;
      data_util = u;
      break;
    }
    case ComponentKind::kFpIsu: {
      const double u = clamp01(ev.rate(EventKind::kFpIssued) / mfw);
      const double occ =
          clamp01(ev.rate(EventKind::kFpIqOcc) / (8.0 + 4.0 * dw));
      alpha = 0.06 + 0.40 * std::pow(u, 0.9) + 0.18 * occ +
              0.12 * saturation(u);
      data_util = u;
      break;
    }
    case ComponentKind::kIntIsu: {
      const double u = clamp01(ev.rate(EventKind::kIntIssued) / iw);
      const double occ =
          clamp01(ev.rate(EventKind::kIntIqOcc) / (8.0 + 4.0 * dw));
      alpha = 0.06 + 0.40 * std::pow(u, 0.9) + 0.18 * occ +
              0.12 * saturation(u);
      data_util = u;
      break;
    }
    case ComponentKind::kMemIsu: {
      const double u = clamp01(ev.rate(EventKind::kMemIssued) / mfw);
      const double occ =
          clamp01(ev.rate(EventKind::kMemIqOcc) / (8.0 + 4.0 * dw));
      alpha = 0.06 + 0.40 * std::pow(u, 0.9) + 0.18 * occ +
              0.12 * saturation(u);
      data_util = u;
      break;
    }
    case ComponentKind::kITlb: {
      const double u = clamp01(ev.rate(EventKind::kItlbAccesses));
      alpha = 0.05 + 0.55 * std::pow(u, 0.85);
      data_util = u;
      break;
    }
    case ComponentKind::kDTlb: {
      const double u = clamp01(ev.rate(EventKind::kDtlbAccesses));
      alpha = 0.05 + 0.55 * std::pow(u, 0.85);
      data_util = u;
      break;
    }
    case ComponentKind::kFuPool: {
      const double weighted =
          ev.rate(EventKind::kAluOps) + 3.0 * ev.rate(EventKind::kMulOps) +
          10.0 * ev.rate(EventKind::kDivOps) +
          2.0 * ev.rate(EventKind::kFpuOps);
      const double u = clamp01(weighted / (iw + 2.0 * mfw));
      alpha = 0.05 + 0.48 * std::pow(u, 0.9) + 0.14 * saturation(u);
      data_util = u;
      break;
    }
    case ComponentKind::kOtherLogic: {
      alpha = 0.08 + 0.50 * std::pow(ipc_util, 0.95);
      data_util = ipc_util;
      break;
    }
    case ComponentKind::kDCacheMshr: {
      const double u =
          clamp01(ev.rate(EventKind::kMshrAllocs) * 38.0 / mshr);
      alpha = 0.05 + 0.50 * std::pow(u, 0.9);
      data_util = u;
      break;
    }
    case ComponentKind::kLsu: {
      const double u = clamp01((ev.rate(EventKind::kLoadsExecuted) +
                                ev.rate(EventKind::kStoresExecuted)) /
                               mfw);
      const double occ = clamp01(
          (ev.rate(EventKind::kLdqOcc) + ev.rate(EventKind::kStqOcc)) /
          (2.0 * lq));
      alpha = 0.05 + 0.36 * std::pow(u, 0.85) + 0.22 * occ +
              0.12 * saturation(u);
      data_util = u;
      break;
    }
    case ComponentKind::kIfu: {
      const double u = clamp01(ev.rate(EventKind::kFetchPackets));
      const double occ =
          clamp01(ev.rate(EventKind::kFetchBufferOcc) / fbe);
      alpha = 0.06 + 0.40 * u + 0.22 * occ + 0.12 * saturation(u);
      data_util = u;
      break;
    }
  }

  ComponentActivity out;
  const double n_alpha = util::noise_factor(wave_key(c, "alpha", ev),
                                            options_.waveform_noise);
  const double n_tog = util::noise_factor(wave_key(c, "toggle", ev),
                                          options_.waveform_noise);
  const double n_comb = util::noise_factor(wave_key(c, "comb", ev),
                                           options_.waveform_noise);
  out.gated_active_rate = std::clamp(alpha * n_alpha, 0.02, 0.97);
  out.register_toggle_rate =
      std::clamp(out.gated_active_rate * (0.28 + 0.25 * data_util) * n_tog,
                 0.005, 0.8);
  out.comb_toggle_rate = std::clamp(
      (0.06 + 0.50 * std::pow(data_util, 1.15) +
       0.10 * miss_per_branch) *
          n_comb,
      0.01, 0.9);
  return out;
}

SramBlockActivity GoldenActivityModel::sram_activity(
    const HardwareConfig& cfg, ComponentKind c, std::string_view position,
    const EventVector& ev) const {
  const double dw = cfg.value_d(HwParam::kDecodeWidth);
  const double fw = cfg.value_d(HwParam::kFetchWidth);
  const double mfw = cfg.value_d(HwParam::kMemFpIssueWidth);
  const double way = cfg.value_d(HwParam::kCacheWay);

  const auto r = [&](EventKind e) { return ev.rate(e); };

  double read = 0.0;
  double write = 0.0;
  switch (c) {
    case ComponentKind::kBpTage:
      // 4 banks read in parallel per lookup; updates hit one bank, with
      // extra corrective writes after mispredicts.
      read = r(EventKind::kBpLookups) * 0.95;
      write = 0.25 * r(EventKind::kBranches) +
              0.50 * r(EventKind::kBpMispredicts);
      break;
    case ComponentKind::kBpBtb:
      if (position == "btb_data") {
        read = 0.5 * r(EventKind::kBpLookups);  // 2 alternating banks
        write = 0.35 * r(EventKind::kBpMispredicts);
      } else {  // btb_meta
        read = r(EventKind::kBpLookups) * 0.9;
        write = 0.4 * r(EventKind::kBpMispredicts);
      }
      break;
    case ComponentKind::kBpOthers:
      read = r(EventKind::kFetchPackets) * 0.9;
      write = 0.8 * r(EventKind::kBranches);
      break;
    case ComponentKind::kICacheTagArray:
      read = r(EventKind::kICacheAccesses);
      write = r(EventKind::kICacheMisses);
      break;
    case ComponentKind::kICacheDataArray:
      // One block per way; every fetch reads all ways in parallel, refills
      // write a single way.
      read = r(EventKind::kICacheAccesses) * 0.98;
      write = r(EventKind::kICacheMisses) / way;
      break;
    case ComponentKind::kRnu:
      if (position == "maptable") {
        read = 0.5 * r(EventKind::kRenameUops);
        write = 0.45 * r(EventKind::kRenameUops);
      } else {  // freelist
        read = 0.3 * r(EventKind::kRenameUops);
        write = 0.3 * r(EventKind::kCommittedUops);
      }
      break;
    case ComponentKind::kRob: {
      // Row-organised bank: one row of DecodeWidth uops per access; the
      // write mask covers only the dispatched slots.
      const double fill =
          std::clamp(r(EventKind::kDispatchedUops) / dw, 0.15, 1.0);
      read = r(EventKind::kCommittedUops) / dw;
      write = (r(EventKind::kDispatchedUops) / dw) * (0.6 + 0.4 * fill);
      break;
    }
    case ComponentKind::kRegfile: {
      const double total_issued = r(EventKind::kIntIssued) +
                                  r(EventKind::kMemIssued) +
                                  r(EventKind::kFpIssued) + 1e-9;
      const double int_share =
          (r(EventKind::kIntIssued) + r(EventKind::kMemIssued)) /
          total_issued;
      const double share =
          position == "int_rf" ? int_share : (1.0 - int_share);
      read = r(EventKind::kRegfileReads) * share / dw;
      write = r(EventKind::kRegfileWrites) * share / dw;
      break;
    }
    case ComponentKind::kDCacheTagArray:
      read = r(EventKind::kDcacheAccesses) / mfw;
      write = r(EventKind::kDcacheMisses) / mfw;
      break;
    case ComponentKind::kDCacheDataArray: {
      // Loads and victim reads; stores write with byte masks (~0.55 of a
      // full-width write on average), refills write full lines.
      read = (r(EventKind::kLoadsExecuted) +
              r(EventKind::kDcacheWritebacks)) /
             mfw;
      write = (0.55 * r(EventKind::kStoresExecuted) +
               r(EventKind::kDcacheMisses)) /
              mfw;
      break;
    }
    case ComponentKind::kITlb:
      read = 0.8 * r(EventKind::kItlbAccesses);  // same-page filtering
      write = r(EventKind::kItlbMisses);
      break;
    case ComponentKind::kDTlb:
      read = 0.85 * r(EventKind::kDtlbAccesses);
      write = r(EventKind::kDtlbMisses);
      break;
    case ComponentKind::kDCacheMshr:
      read = r(EventKind::kDcacheMisses);
      write = r(EventKind::kMshrAllocs);
      break;
    case ComponentKind::kLsu:
      if (position == "ldq") {
        read = 1.1 * r(EventKind::kLoadsExecuted);
        write = r(EventKind::kLoadsExecuted);
      } else {  // stq
        read = r(EventKind::kStoresExecuted) +
               0.3 * r(EventKind::kLoadsExecuted);
        write = r(EventKind::kStoresExecuted);
      }
      break;
    case ComponentKind::kIfu:
      if (position == "fb") {
        const double fill =
            std::clamp(r(EventKind::kFetchPackets) * fw / dw, 0.2, 1.0);
        read = 0.9 * r(EventKind::kDecodedUops) / dw;
        write = r(EventKind::kFetchPackets) * (0.6 + 0.4 * fill);
      } else if (position == "meta") {
        read = 0.9 * r(EventKind::kFetchPackets);
        write = 0.85 * r(EventKind::kFetchPackets);
      } else {  // ghist_q
        read = 0.8 * r(EventKind::kBranches);
        write = 0.5 * r(EventKind::kFetchPackets);
      }
      break;
    case ComponentKind::kICacheOthers:
    case ComponentKind::kDCacheOthers:
    case ComponentKind::kFpIsu:
    case ComponentKind::kIntIsu:
    case ComponentKind::kMemIsu:
    case ComponentKind::kFuPool:
    case ComponentKind::kOtherLogic:
      break;  // no SRAM positions
  }

  SramBlockActivity out;
  std::uint64_t key = wave_key(c, "sram", ev);
  key = util::hash_combine(key, util::hash_str(position));
  out.read_freq = std::max(
      0.0, read * util::noise_factor(util::hash_combine(key, 1),
                                     options_.waveform_noise));
  out.write_freq = std::max(
      0.0, write * util::noise_factor(util::hash_combine(key, 2),
                                      options_.waveform_noise));
  return out;
}

}  // namespace autopower::power
