// Power report types shared by the golden flow, AutoPower, and baselines.
//
// Power is decomposed exactly along the paper's power groups: clock, SRAM,
// and logic (with logic further split into register and combinational for
// Sec. II-C).  All values in milliwatts.
#pragma once

#include <vector>

#include "arch/component.hpp"

namespace autopower::power {

/// Per-group power of one component (mW).
struct PowerGroups {
  double clock = 0.0;
  double sram = 0.0;
  double logic_register = 0.0;
  double logic_comb = 0.0;

  [[nodiscard]] double logic() const noexcept {
    return logic_register + logic_comb;
  }
  [[nodiscard]] double total() const noexcept {
    return clock + sram + logic_register + logic_comb;
  }

  PowerGroups& operator+=(const PowerGroups& other) noexcept {
    clock += other.clock;
    sram += other.sram;
    logic_register += other.logic_register;
    logic_comb += other.logic_comb;
    return *this;
  }
};

/// Power of one component.
struct ComponentPower {
  arch::ComponentKind component{};
  PowerGroups groups;
};

/// Whole-core power for one (configuration, workload) evaluation.
struct PowerResult {
  std::vector<ComponentPower> components;  // Table III order

  [[nodiscard]] PowerGroups totals() const noexcept {
    PowerGroups acc;
    for (const auto& c : components) acc += c.groups;
    return acc;
  }
  [[nodiscard]] double total() const noexcept { return totals().total(); }

  /// Power of one component (Table III order lookup).
  [[nodiscard]] const PowerGroups& of(arch::ComponentKind c) const {
    return components[static_cast<std::size_t>(c)].groups;
  }
};

}  // namespace autopower::power
