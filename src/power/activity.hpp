// Golden activity model — the RTL-simulation (VCS) stand-in.
//
// Produces the cycle-accurate activity quantities a power-simulation flow
// extracts from RTL waveforms:
//
//   * per-component gated-register active rate (alpha in Eq. 3),
//   * per-component register data-toggle rate and combinational toggle rate,
//   * per-SRAM-Block read/write frequencies, with write-mask accounting
//     ("one write" = all mask sectors valid, paper Sec. II-B).
//
// The functions are *richer* than what the performance simulator exposes:
// saturating non-linearities, cross-event products, and a small
// deterministic waveform noise keyed on the event values.  This models the
// gem5-vs-RTL gap the paper identifies; architecture-level models can
// approximate, but never exactly invert, these labels.
#pragma once

#include <string_view>

#include "arch/component.hpp"
#include "arch/events.hpp"
#include "arch/params.hpp"

namespace autopower::power {

/// Register/combinational activity of one component in one window.
struct ComponentActivity {
  /// Average active rate of gated registers (alpha), in [0, 1].
  double gated_active_rate = 0.0;
  /// Average data-input toggle rate per register, in [0, 1].
  double register_toggle_rate = 0.0;
  /// Average toggle rate per combinational cell, in [0, 1].
  double comb_toggle_rate = 0.0;
};

/// Read/write frequency of one SRAM Block (accesses per cycle; writes are
/// mask-weighted "full writes").
struct SramBlockActivity {
  double read_freq = 0.0;
  double write_freq = 0.0;
};

/// Options for the golden activity model.
struct ActivityOptions {
  /// Relative amplitude of the deterministic waveform noise.
  double waveform_noise = 0.03;
};

/// The golden (RTL-level) activity model.
class GoldenActivityModel {
 public:
  GoldenActivityModel() = default;
  explicit GoldenActivityModel(ActivityOptions options) : options_(options) {}

  /// Register and combinational activity of a component.
  [[nodiscard]] ComponentActivity component_activity(
      const arch::HardwareConfig& cfg, arch::ComponentKind c,
      const arch::EventVector& events) const;

  /// Block-level read/write frequency of one SRAM Position.
  [[nodiscard]] SramBlockActivity sram_activity(
      const arch::HardwareConfig& cfg, arch::ComponentKind c,
      std::string_view position, const arch::EventVector& events) const;

 private:
  ActivityOptions options_;
};

}  // namespace autopower::power
