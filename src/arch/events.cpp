#include "arch/events.hpp"

#include <string>

namespace autopower::arch {

namespace {

constexpr std::array<std::string_view, kNumEvents> kEventNames = {
    "Cycles",
    "Instructions",
    "Branches",
    "Loads",
    "Stores",
    "IntAluInstrs",
    "MulDivInstrs",
    "FpInstrs",
    "FetchPackets",
    "FetchBubbles",
    "FetchBufferOcc",
    "BpLookups",
    "BpMispredicts",
    "BtbHits",
    "ICacheAccesses",
    "ICacheMisses",
    "ItlbAccesses",
    "ItlbMisses",
    "DecodedUops",
    "RenameUops",
    "RenameStalls",
    "DispatchedUops",
    "CommittedUops",
    "RobOccupancy",
    "PipelineFlushes",
    "IntIssued",
    "MemIssued",
    "FpIssued",
    "IntIqOcc",
    "MemIqOcc",
    "FpIqOcc",
    "RegfileReads",
    "RegfileWrites",
    "AluOps",
    "MulOps",
    "DivOps",
    "FpuOps",
    "LoadsExecuted",
    "StoresExecuted",
    "StoreForwards",
    "LdqOcc",
    "StqOcc",
    "DcacheAccesses",
    "DcacheMisses",
    "DcacheWritebacks",
    "MshrAllocs",
    "MshrFullStalls",
    "DtlbAccesses",
    "DtlbMisses",
};

using E = EventKind;

constexpr std::array<E, 5> kBpEvents = {E::kBpLookups, E::kBpMispredicts,
                                        E::kBtbHits, E::kFetchPackets,
                                        E::kPipelineFlushes};
constexpr std::array<E, 4> kICacheEvents = {E::kICacheAccesses,
                                            E::kICacheMisses,
                                            E::kFetchPackets, E::kItlbMisses};
constexpr std::array<E, 2> kITlbEvents = {E::kItlbAccesses, E::kItlbMisses};
constexpr std::array<E, 4> kRnuEvents = {E::kRenameUops, E::kRenameStalls,
                                         E::kDecodedUops, E::kDispatchedUops};
constexpr std::array<E, 4> kRobEvents = {E::kDispatchedUops, E::kCommittedUops,
                                         E::kRobOccupancy,
                                         E::kPipelineFlushes};
constexpr std::array<E, 5> kRegfileEvents = {E::kRegfileReads,
                                             E::kRegfileWrites, E::kIntIssued,
                                             E::kFpIssued, E::kMemIssued};
constexpr std::array<E, 5> kDCacheEvents = {E::kDcacheAccesses,
                                            E::kDcacheMisses,
                                            E::kDcacheWritebacks,
                                            E::kMshrAllocs, E::kDtlbMisses};
constexpr std::array<E, 4> kMshrEvents = {E::kMshrAllocs, E::kMshrFullStalls,
                                          E::kDcacheMisses,
                                          E::kDcacheWritebacks};
constexpr std::array<E, 2> kDTlbEvents = {E::kDtlbAccesses, E::kDtlbMisses};
constexpr std::array<E, 3> kFpIsuEvents = {E::kFpIssued, E::kFpIqOcc,
                                           E::kDispatchedUops};
constexpr std::array<E, 3> kIntIsuEvents = {E::kIntIssued, E::kIntIqOcc,
                                            E::kDispatchedUops};
constexpr std::array<E, 3> kMemIsuEvents = {E::kMemIssued, E::kMemIqOcc,
                                            E::kDispatchedUops};
constexpr std::array<E, 5> kFuPoolEvents = {E::kAluOps, E::kMulOps,
                                            E::kDivOps, E::kFpuOps,
                                            E::kIntIssued};
constexpr std::array<E, 4> kOtherEvents = {E::kCommittedUops, E::kInstructions,
                                           E::kDispatchedUops,
                                           E::kPipelineFlushes};
constexpr std::array<E, 6> kLsuEvents = {E::kLoadsExecuted, E::kStoresExecuted,
                                         E::kStoreForwards, E::kLdqOcc,
                                         E::kStqOcc, E::kDcacheMisses};
constexpr std::array<E, 5> kIfuEvents = {E::kFetchPackets, E::kFetchBubbles,
                                         E::kFetchBufferOcc,
                                         E::kICacheAccesses, E::kDecodedUops};

}  // namespace

std::string_view event_name(EventKind e) noexcept {
  return kEventNames[static_cast<std::size_t>(e)];
}

double EventVector::rate(EventKind e) const noexcept {
  const double c = cycles();
  if (c <= 0.0) return 0.0;
  if (e == EventKind::kCycles) return 1.0;
  return (*this)[e] / c;
}

EventVector& EventVector::operator+=(const EventVector& other) noexcept {
  for (std::size_t i = 0; i < kNumEvents; ++i) {
    values_[i] += other.values_[i];
  }
  return *this;
}

std::span<const EventKind> component_events(ComponentKind c) noexcept {
  switch (c) {
    case ComponentKind::kBpTage:
    case ComponentKind::kBpBtb:
    case ComponentKind::kBpOthers:
      return kBpEvents;
    case ComponentKind::kICacheTagArray:
    case ComponentKind::kICacheDataArray:
    case ComponentKind::kICacheOthers:
      return kICacheEvents;
    case ComponentKind::kRnu:
      return kRnuEvents;
    case ComponentKind::kRob:
      return kRobEvents;
    case ComponentKind::kRegfile:
      return kRegfileEvents;
    case ComponentKind::kDCacheTagArray:
    case ComponentKind::kDCacheDataArray:
    case ComponentKind::kDCacheOthers:
      return kDCacheEvents;
    case ComponentKind::kFpIsu:
      return kFpIsuEvents;
    case ComponentKind::kIntIsu:
      return kIntIsuEvents;
    case ComponentKind::kMemIsu:
      return kMemIsuEvents;
    case ComponentKind::kITlb:
      return kITlbEvents;
    case ComponentKind::kDTlb:
      return kDTlbEvents;
    case ComponentKind::kFuPool:
      return kFuPoolEvents;
    case ComponentKind::kOtherLogic:
      return kOtherEvents;
    case ComponentKind::kDCacheMshr:
      return kMshrEvents;
    case ComponentKind::kLsu:
      return kLsuEvents;
    case ComponentKind::kIfu:
      return kIfuEvents;
  }
  return {};
}

std::vector<double> component_event_features(ComponentKind c,
                                             const EventVector& events) {
  const auto kinds = component_events(c);
  std::vector<double> out;
  out.reserve(kinds.size());
  for (EventKind e : kinds) out.push_back(events.rate(e));
  return out;
}

std::vector<std::string> component_event_feature_names(ComponentKind c) {
  const auto kinds = component_events(c);
  std::vector<std::string> out;
  out.reserve(kinds.size());
  for (EventKind e : kinds) out.push_back("E." + std::string(event_name(e)));
  return out;
}

}  // namespace autopower::arch
