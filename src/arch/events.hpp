// Event-parameter schema — what the performance simulator reports.
//
// "Event parameters E" in the paper are the per-workload activity counters
// collected from gem5.  Counters are raw counts over the simulated window;
// occupancy events are stored as entry-cycle integrals so that windows can
// be summed.  Models consume *rates* (value / cycles): a per-cycle event
// rate for counters and an average occupancy for occupancy events.  This
// makes the same models usable for whole-workload aggregates and for the
// 50-cycle windows of the power-trace experiment.
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string_view>
#include <vector>

#include "arch/component.hpp"

namespace autopower::arch {

/// Every activity counter the performance simulator emits.
enum class EventKind : std::size_t {
  kCycles = 0,
  // Committed-instruction class counts.
  kInstructions,
  kBranches,
  kLoads,
  kStores,
  kIntAluInstrs,
  kMulDivInstrs,
  kFpInstrs,
  // Front end.
  kFetchPackets,
  kFetchBubbles,
  kFetchBufferOcc,  // occupancy integral (entry-cycles)
  kBpLookups,
  kBpMispredicts,
  kBtbHits,
  kICacheAccesses,
  kICacheMisses,
  kItlbAccesses,
  kItlbMisses,
  // Decode / rename / ROB.
  kDecodedUops,
  kRenameUops,
  kRenameStalls,
  kDispatchedUops,
  kCommittedUops,
  kRobOccupancy,  // occupancy integral (entry-cycles)
  kPipelineFlushes,
  // Issue / execute.
  kIntIssued,
  kMemIssued,
  kFpIssued,
  kIntIqOcc,
  kMemIqOcc,
  kFpIqOcc,
  kRegfileReads,
  kRegfileWrites,
  kAluOps,
  kMulOps,
  kDivOps,
  kFpuOps,
  // Load/store unit and D-side memory.
  kLoadsExecuted,
  kStoresExecuted,
  kStoreForwards,
  kLdqOcc,
  kStqOcc,
  kDcacheAccesses,
  kDcacheMisses,
  kDcacheWritebacks,
  kMshrAllocs,
  kMshrFullStalls,
  kDtlbAccesses,
  kDtlbMisses,
};

inline constexpr std::size_t kNumEvents = 49;

/// Counter name (stable identifier used in feature names and reports).
[[nodiscard]] std::string_view event_name(EventKind e) noexcept;

/// A complete set of counters for one simulated window or whole workload.
class EventVector {
 public:
  EventVector() { values_.fill(0.0); }

  [[nodiscard]] double& operator[](EventKind e) noexcept {
    return values_[static_cast<std::size_t>(e)];
  }
  [[nodiscard]] double operator[](EventKind e) const noexcept {
    return values_[static_cast<std::size_t>(e)];
  }

  [[nodiscard]] double cycles() const noexcept {
    return values_[static_cast<std::size_t>(EventKind::kCycles)];
  }

  /// Value divided by cycles: a per-cycle rate for counters, an average
  /// occupancy for occupancy integrals.  Returns 0 when cycles == 0.
  [[nodiscard]] double rate(EventKind e) const noexcept;

  /// Element-wise accumulation (used to aggregate windows into workloads).
  EventVector& operator+=(const EventVector& other) noexcept;

 private:
  std::array<double, kNumEvents> values_;
};

/// The event counters relevant to one component (its event parameters).
[[nodiscard]] std::span<const EventKind> component_events(
    ComponentKind c) noexcept;

/// Feature vector of per-cycle event rates for a component.
[[nodiscard]] std::vector<double> component_event_features(
    ComponentKind c, const EventVector& events);

/// Names matching component_event_features, prefixed "E.".
[[nodiscard]] std::vector<std::string> component_event_feature_names(
    ComponentKind c);

}  // namespace autopower::arch
