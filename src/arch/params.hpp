// Architecture-level hardware parameters (paper Table II).
//
// The 14 parameters parameterise the BOOM-style out-of-order core.  Rows
// that Table II shares between two structures (LDQ/STQEntry,
// Mem/FpIssueWidth, DCache/ICacheWay) are modelled as single shared
// parameters, exactly as the paper's configuration table does.  The paper's
// I-TLB entry count is not an independent row of Table II; it shares the
// TlbEntry parameter with the D-TLB (documented in DESIGN.md).
#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace autopower::arch {

/// One hardware parameter axis of the design space (one row of Table II).
enum class HwParam : std::size_t {
  kFetchWidth = 0,
  kDecodeWidth,
  kFetchBufferEntry,
  kRobEntry,
  kIntPhyRegister,
  kFpPhyRegister,
  kLdqStqEntry,      // LDQ/STQEntry (shared value)
  kBranchCount,
  kMemFpIssueWidth,  // Mem/FpIssueWidth (shared value)
  kIntIssueWidth,
  kCacheWay,         // DCache/ICacheWay (shared value)
  kTlbEntry,         // DTLBEntry (shared with the I-TLB)
  kMshrEntry,
  kICacheFetchBytes,
};

inline constexpr std::size_t kNumHwParams = 14;

/// All parameter axes in Table II row order.
[[nodiscard]] std::span<const HwParam> all_hw_params() noexcept;

/// Human-readable parameter name matching the paper's nomenclature.
[[nodiscard]] std::string_view hw_param_name(HwParam p) noexcept;

/// Inverse of hw_param_name ("RobEntry" -> kRobEntry); throws
/// util::InvalidArgument for unknown names.
[[nodiscard]] HwParam hw_param_by_name(std::string_view name);

/// A complete CPU configuration: a value per hardware parameter.
class HardwareConfig {
 public:
  HardwareConfig() = default;

  /// Values in HwParam order.
  explicit HardwareConfig(std::string name,
                          std::array<int, kNumHwParams> values)
      : name_(std::move(name)), values_(values) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  [[nodiscard]] int value(HwParam p) const noexcept {
    return values_[static_cast<std::size_t>(p)];
  }
  [[nodiscard]] double value_d(HwParam p) const noexcept {
    return static_cast<double>(value(p));
  }

  /// All 14 values as a feature vector (HwParam order).
  [[nodiscard]] std::vector<double> as_features() const;

  /// Values for an arbitrary subset of parameters, in the given order.
  [[nodiscard]] std::vector<double> features_for(
      std::span<const HwParam> params) const;

  [[nodiscard]] bool operator==(const HardwareConfig&) const = default;

 private:
  std::string name_;
  std::array<int, kNumHwParams> values_{};
};

/// The 15 BOOM configurations of paper Table II, C1..C15 (index 0..14).
[[nodiscard]] const std::vector<HardwareConfig>& boom_design_space();

/// Looks up a configuration by name ("C1".."C15"); throws if unknown.
[[nodiscard]] const HardwareConfig& boom_config(std::string_view name);

}  // namespace autopower::arch
