#include "arch/params.hpp"

#include "util/error.hpp"

namespace autopower::arch {

namespace {

constexpr std::array<HwParam, kNumHwParams> kAllParams = {
    HwParam::kFetchWidth,      HwParam::kDecodeWidth,
    HwParam::kFetchBufferEntry, HwParam::kRobEntry,
    HwParam::kIntPhyRegister,  HwParam::kFpPhyRegister,
    HwParam::kLdqStqEntry,     HwParam::kBranchCount,
    HwParam::kMemFpIssueWidth, HwParam::kIntIssueWidth,
    HwParam::kCacheWay,        HwParam::kTlbEntry,
    HwParam::kMshrEntry,       HwParam::kICacheFetchBytes,
};

constexpr std::array<std::string_view, kNumHwParams> kParamNames = {
    "FetchWidth",      "DecodeWidth",   "FetchBufferEntry", "RobEntry",
    "IntPhyRegister",  "FpPhyRegister", "LdqStqEntry",      "BranchCount",
    "MemFpIssueWidth", "IntIssueWidth", "CacheWay",         "TlbEntry",
    "MshrEntry",       "ICacheFetchBytes",
};

// Paper Table II, columns C1..C15; rows in HwParam order.
struct ConfigRow {
  std::string_view name;
  std::array<int, kNumHwParams> values;
};

constexpr std::array<ConfigRow, 15> kTableII = {{
    //        FW DW FBE ROB IPR FPR LQ  BC MFW IW CW TLB MSHR IFB
    {"C1", {4, 1, 5, 16, 36, 36, 4, 6, 1, 1, 2, 8, 2, 2}},
    {"C2", {4, 1, 8, 32, 53, 48, 8, 8, 1, 1, 4, 8, 2, 2}},
    {"C3", {4, 1, 16, 48, 68, 56, 16, 10, 1, 1, 8, 16, 4, 2}},
    {"C4", {4, 2, 8, 64, 64, 56, 12, 10, 1, 1, 4, 8, 2, 2}},
    {"C5", {4, 2, 16, 64, 80, 64, 16, 12, 1, 2, 4, 8, 2, 2}},
    {"C6", {8, 2, 24, 80, 88, 72, 20, 14, 1, 2, 8, 16, 4, 4}},
    {"C7", {8, 3, 18, 81, 88, 88, 16, 14, 1, 2, 8, 16, 4, 4}},
    {"C8", {8, 3, 24, 96, 110, 96, 24, 16, 1, 3, 8, 16, 4, 4}},
    {"C9", {8, 3, 30, 114, 112, 112, 32, 16, 2, 3, 8, 32, 4, 4}},
    {"C10", {8, 4, 24, 112, 108, 108, 24, 18, 1, 4, 8, 32, 4, 4}},
    {"C11", {8, 4, 32, 128, 128, 128, 32, 20, 2, 4, 8, 32, 4, 4}},
    {"C12", {8, 4, 40, 136, 136, 136, 36, 20, 2, 4, 8, 32, 8, 4}},
    {"C13", {8, 5, 30, 125, 108, 108, 24, 18, 2, 5, 8, 32, 8, 4}},
    {"C14", {8, 5, 35, 130, 128, 128, 32, 20, 2, 5, 8, 32, 8, 4}},
    {"C15", {8, 5, 40, 140, 140, 140, 36, 20, 2, 5, 8, 32, 8, 4}},
}};

}  // namespace

std::span<const HwParam> all_hw_params() noexcept { return kAllParams; }

std::string_view hw_param_name(HwParam p) noexcept {
  return kParamNames[static_cast<std::size_t>(p)];
}

HwParam hw_param_by_name(std::string_view name) {
  for (std::size_t i = 0; i < kNumHwParams; ++i) {
    if (kParamNames[i] == name) return kAllParams[i];
  }
  throw util::InvalidArgument("unknown hardware parameter: " +
                              std::string(name));
}

std::vector<double> HardwareConfig::as_features() const {
  return features_for(all_hw_params());
}

std::vector<double> HardwareConfig::features_for(
    std::span<const HwParam> params) const {
  std::vector<double> out;
  out.reserve(params.size());
  for (HwParam p : params) out.push_back(value_d(p));
  return out;
}

const std::vector<HardwareConfig>& boom_design_space() {
  static const std::vector<HardwareConfig> configs = [] {
    std::vector<HardwareConfig> out;
    out.reserve(kTableII.size());
    for (const auto& row : kTableII) {
      out.emplace_back(std::string(row.name), row.values);
    }
    return out;
  }();
  return configs;
}

const HardwareConfig& boom_config(std::string_view name) {
  for (const auto& cfg : boom_design_space()) {
    if (cfg.name() == name) return cfg;
  }
  throw util::InvalidArgument("unknown BOOM configuration: " +
                              std::string(name));
}

}  // namespace autopower::arch
