// CPU components and their architecture-level parameter mapping
// (paper Table III).
//
// AutoPower builds per-component models; each component sees only its own
// hardware parameters (Table III) and its own event parameters.  The 22
// components here are exactly the rows of Table III, including the three
// "Others" buckets and the catch-all Other Logic.
#pragma once

#include <cstddef>
#include <span>
#include <string_view>

#include "arch/params.hpp"

namespace autopower::arch {

/// One row of paper Table III.
enum class ComponentKind : std::size_t {
  kBpTage = 0,
  kBpBtb,
  kBpOthers,
  kICacheTagArray,
  kICacheDataArray,
  kICacheOthers,
  kRnu,
  kRob,
  kRegfile,
  kDCacheTagArray,
  kDCacheDataArray,
  kDCacheOthers,
  kFpIsu,
  kIntIsu,
  kMemIsu,
  kITlb,
  kDTlb,
  kFuPool,
  kOtherLogic,
  kDCacheMshr,
  kLsu,
  kIfu,
};

inline constexpr std::size_t kNumComponents = 22;

/// All components in Table III order.
[[nodiscard]] std::span<const ComponentKind> all_components() noexcept;

/// Component name as printed in the paper's figures.
[[nodiscard]] std::string_view component_name(ComponentKind c) noexcept;

/// The hardware parameters visible to a component (Table III row).
/// Other Logic maps to all 14 parameters.
[[nodiscard]] std::span<const HwParam> component_hw_params(
    ComponentKind c) noexcept;

}  // namespace autopower::arch
