#include "arch/component.hpp"

#include <array>

namespace autopower::arch {

namespace {

constexpr std::array<ComponentKind, kNumComponents> kAllComponents = {
    ComponentKind::kBpTage,         ComponentKind::kBpBtb,
    ComponentKind::kBpOthers,       ComponentKind::kICacheTagArray,
    ComponentKind::kICacheDataArray, ComponentKind::kICacheOthers,
    ComponentKind::kRnu,            ComponentKind::kRob,
    ComponentKind::kRegfile,        ComponentKind::kDCacheTagArray,
    ComponentKind::kDCacheDataArray, ComponentKind::kDCacheOthers,
    ComponentKind::kFpIsu,          ComponentKind::kIntIsu,
    ComponentKind::kMemIsu,         ComponentKind::kITlb,
    ComponentKind::kDTlb,           ComponentKind::kFuPool,
    ComponentKind::kOtherLogic,     ComponentKind::kDCacheMshr,
    ComponentKind::kLsu,            ComponentKind::kIfu,
};

constexpr std::array<std::string_view, kNumComponents> kNames = {
    "BPTAGE",        "BPBTB",          "BPOthers",     "ICacheTagArray",
    "ICacheDataArray", "ICacheOthers", "RNU",          "ROB",
    "Regfile",       "DCacheTagArray", "DCacheDataArray", "DCacheOthers",
    "FP-ISU",        "Int-ISU",        "Mem-ISU",      "I-TLB",
    "D-TLB",         "FU Pool",        "Other Logic",  "DCacheMSHR",
    "LSU",           "IFU",
};

// Table III, row by row.  Other Logic uses all 14 parameters.
constexpr std::array<HwParam, 2> kBpParams = {HwParam::kFetchWidth,
                                              HwParam::kBranchCount};
constexpr std::array<HwParam, 2> kICacheParams = {HwParam::kCacheWay,
                                                  HwParam::kICacheFetchBytes};
constexpr std::array<HwParam, 1> kRnuParams = {HwParam::kDecodeWidth};
constexpr std::array<HwParam, 2> kRobParams = {HwParam::kDecodeWidth,
                                               HwParam::kRobEntry};
constexpr std::array<HwParam, 3> kRegfileParams = {HwParam::kDecodeWidth,
                                                   HwParam::kIntPhyRegister,
                                                   HwParam::kFpPhyRegister};
constexpr std::array<HwParam, 3> kDCacheTagParams = {
    HwParam::kCacheWay, HwParam::kMemFpIssueWidth, HwParam::kTlbEntry};
constexpr std::array<HwParam, 2> kDCacheDataParams = {
    HwParam::kCacheWay, HwParam::kMemFpIssueWidth};
constexpr std::array<HwParam, 3> kDCacheOthersParams = {
    HwParam::kCacheWay, HwParam::kMemFpIssueWidth, HwParam::kTlbEntry};
constexpr std::array<HwParam, 2> kFpIsuParams = {HwParam::kDecodeWidth,
                                                 HwParam::kMemFpIssueWidth};
constexpr std::array<HwParam, 2> kIntIsuParams = {HwParam::kDecodeWidth,
                                                  HwParam::kIntIssueWidth};
constexpr std::array<HwParam, 2> kMemIsuParams = {HwParam::kDecodeWidth,
                                                  HwParam::kMemFpIssueWidth};
constexpr std::array<HwParam, 1> kTlbParams = {HwParam::kTlbEntry};
constexpr std::array<HwParam, 2> kFuPoolParams = {HwParam::kMemFpIssueWidth,
                                                  HwParam::kIntIssueWidth};
constexpr std::array<HwParam, 1> kMshrParams = {HwParam::kMshrEntry};
constexpr std::array<HwParam, 2> kLsuParams = {HwParam::kLdqStqEntry,
                                               HwParam::kMemFpIssueWidth};
constexpr std::array<HwParam, 3> kIfuParams = {HwParam::kFetchWidth,
                                               HwParam::kDecodeWidth,
                                               HwParam::kFetchBufferEntry};

}  // namespace

std::span<const ComponentKind> all_components() noexcept {
  return kAllComponents;
}

std::string_view component_name(ComponentKind c) noexcept {
  return kNames[static_cast<std::size_t>(c)];
}

std::span<const HwParam> component_hw_params(ComponentKind c) noexcept {
  switch (c) {
    case ComponentKind::kBpTage:
    case ComponentKind::kBpBtb:
    case ComponentKind::kBpOthers:
      return kBpParams;
    case ComponentKind::kICacheTagArray:
    case ComponentKind::kICacheDataArray:
    case ComponentKind::kICacheOthers:
      return kICacheParams;
    case ComponentKind::kRnu:
      return kRnuParams;
    case ComponentKind::kRob:
      return kRobParams;
    case ComponentKind::kRegfile:
      return kRegfileParams;
    case ComponentKind::kDCacheTagArray:
      return kDCacheTagParams;
    case ComponentKind::kDCacheDataArray:
      return kDCacheDataParams;
    case ComponentKind::kDCacheOthers:
      return kDCacheOthersParams;
    case ComponentKind::kFpIsu:
      return kFpIsuParams;
    case ComponentKind::kIntIsu:
      return kIntIsuParams;
    case ComponentKind::kMemIsu:
      return kMemIsuParams;
    case ComponentKind::kITlb:
    case ComponentKind::kDTlb:
      return kTlbParams;
    case ComponentKind::kFuPool:
      return kFuPoolParams;
    case ComponentKind::kOtherLogic:
      return all_hw_params();
    case ComponentKind::kDCacheMshr:
      return kMshrParams;
    case ComponentKind::kLsu:
      return kLsuParams;
    case ComponentKind::kIfu:
      return kIfuParams;
  }
  return {};
}

}  // namespace autopower::arch
