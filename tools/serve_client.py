#!/usr/bin/env python3
"""Minimal scriptable client for the `autopower serve` daemon.

Connects to the daemon (with retries, so it can be started right after
the daemon process forks), streams a JSONL request file in, reads one
response line per non-blank request line, and writes them to stdout (or
--out).  Used by tools/check.sh's daemon smoke stage and by ad-hoc
scripting; it has no dependencies beyond the Python standard library.

    autopower serve --model m.ap --port 7077 &
    python3 tools/serve_client.py --port 7077 < requests.jsonl > out.jsonl

Exit codes: 0 on success, 1 on bad arguments or connect failure, 2 if
the daemon closed the connection before answering every request.
"""

import argparse
import socket
import sys
import time


def connect(host: str, port: int, retries: int, delay: float) -> socket.socket:
    last_error = None
    for attempt in range(max(1, retries)):
        try:
            return socket.create_connection((host, port))
        except OSError as err:
            last_error = err
            if attempt + 1 < retries:
                time.sleep(delay)
    raise SystemExit(f"serve_client: cannot connect to {host}:{port}: {last_error}")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, required=True)
    parser.add_argument("--requests", default="-",
                        help="JSONL request file (default: stdin)")
    parser.add_argument("--out", default="-",
                        help="response output file (default: stdout)")
    parser.add_argument("--retries", type=int, default=40,
                        help="connect attempts before giving up")
    parser.add_argument("--retry-delay", type=float, default=0.25,
                        help="seconds between connect attempts")
    args = parser.parse_args()

    if args.requests == "-":
        payload = sys.stdin.read()
    else:
        with open(args.requests, "r", encoding="utf-8") as f:
            payload = f.read()
    if payload and not payload.endswith("\n"):
        payload += "\n"
    # The daemon answers every non-blank line (including parse errors);
    # blank lines are skipped without a response.
    expected = sum(1 for line in payload.splitlines() if line.strip())

    sock = connect(args.host, args.port, args.retries, args.retry_delay)
    out = sys.stdout if args.out == "-" else open(args.out, "w", encoding="utf-8")
    try:
        sock.sendall(payload.encode("utf-8"))
        sock.shutdown(socket.SHUT_WR)
        rfile = sock.makefile("r", encoding="utf-8")
        received = 0
        while received < expected:
            line = rfile.readline()
            if not line:
                print(f"serve_client: daemon closed after {received}/{expected} "
                      "responses", file=sys.stderr)
                return 2
            out.write(line)
            received += 1
        out.flush()
    finally:
        if out is not sys.stdout:
            out.close()
        sock.close()
    return 0


if __name__ == "__main__":
    sys.exit(main())
