#!/usr/bin/env bash
# Repo health check: builds the default preset, verifies the SIMD arch
# flags stay confined to the dispatched TUs, runs the self-checking
# throughput benches (training core + SIMD tier differencing + batch
# serving + daemon wire path + structural-memo sweep) and collects their
# headline numbers into BENCH_train.json, BENCH_serve.json and
# BENCH_sim.json, smoke-tests the serving daemon against `batch` for
# byte-identity, graceful drain, and hot-swap (an in-stream reload and a
# SIGHUP reload-all, each half diffed byte-for-byte against the matching
# model's batch output), SIGKILLs a checkpointed sweep
# mid-grid and diffs the resumed report byte-for-byte against an
# uninterrupted run, smoke-tests `explore` (seed-pinned two-run diff
# plus a SIGKILL/--resume leg diffed against the uninterrupted
# frontier) and runs bench_explore's optimum-equality and
# simulator-economy bars into BENCH_explore.json, re-runs the
# sweep/batch smokes under
# AUTOPOWER_SIMD=scalar and diffs the JSONL byte-for-byte against the
# best tier, runs the property-based differential + SIMD kernel oracles
# and the archive fuzz under AddressSanitizer, then race-checks the
# threaded subsystems, the fault-injection suite, the SIMD dispatch
# handoff, and the daemon under ThreadSanitizer.  Run
# from anywhere; exits non-zero on any build failure, bench self-check
# failure, test failure, or sanitizer report.  Failing properties print
# a reproducing AUTOPOWER_PROPTEST_SEED line.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== configure + build (default preset) =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"

echo "== SIMD flag isolation (arch flags stay in the dispatched TUs) =="
# The runtime dispatcher is only sound if AVX2/SSE2 codegen is confined
# to the per-tier translation units: -mavx2 leaking into a generally
# linked TU would let the compiler emit AVX2 in code that runs on any
# host.  compile_commands.json is exported by the default preset.
python3 - <<'EOF'
import json, sys
cc = json.load(open('build/compile_commands.json'))
bad = []
for e in cc:
    cmd = e.get('command') or ' '.join(e.get('arguments', []))
    if '-mavx2' in cmd or '-msse2' in cmd:
        f = e['file']
        if not (f.endswith('simd_avx2.cpp') or f.endswith('simd_sse2.cpp')):
            bad.append(f)
if bad:
    print('arch flags leaked outside the dispatched SIMD TUs:')
    for f in bad:
        print('  ' + f)
    sys.exit(1)
print('arch flags confined to simd_sse2.cpp / simd_avx2.cpp')
EOF

echo "== bench_train_throughput (self-check: bit-identity + speedup bars) =="
./build/bench/bench_train_throughput --json /tmp/autopower_bench_train.json

echo "== bench_serve_throughput (self-check: bit-identity + speedup bar + daemon wire path) =="
./build/bench/bench_serve_throughput --json /tmp/autopower_bench_serve.json
cp /tmp/autopower_bench_serve.json BENCH_serve.json
echo "daemon req/s + p50/p99 in BENCH_serve.json"

echo "== write BENCH_train.json =="
{
  printf '{\n  "train":\n'
  sed 's/^/  /' /tmp/autopower_bench_train.json | sed '$s/$/,/'
  printf '  "serve":\n'
  sed 's/^/  /' /tmp/autopower_bench_serve.json
  printf '}\n'
} > BENCH_train.json
echo "headline numbers in BENCH_train.json"

echo "== bench_sim_throughput (self-check: bit-identity + sweep speedup bars + streaming RSS bar) =="
# The streaming stage defaults to the full 1e7-cell acceptance grid
# (~45 min on one core); CI runs a 2e5-cell slice of the same shape —
# the RSS bound and completion checks are scale-independent, and the
# JSON records stream_cells so the scale is always explicit.  Unset the
# variable to re-record the full-scale acceptance numbers.
AUTOPOWER_BENCH_STREAM_CELLS="${AUTOPOWER_BENCH_STREAM_CELLS:-200000}" \
  ./build/bench/bench_sim_throughput --json BENCH_sim.json
echo "headline numbers in BENCH_sim.json"

echo "== bench_metrics_overhead (self-check: <=5% overhead + bit-identity) =="
./build/bench/bench_metrics_overhead --json BENCH_metrics.json
echo "headline numbers in BENCH_metrics.json"

echo "== sweep smoke run with a --stats snapshot =="
smoke_dir="$(mktemp -d)"
trap 'rm -rf "$smoke_dir"' EXIT
./build/tools/autopower train --known C1,C15 --out "$smoke_dir/model.ap" \
  --threads 2
./build/tools/autopower sweep --model "$smoke_dir/model.ap" \
  --grid "RobEntry=64,96" --workloads dhrystone,qsort --threads 2 \
  --out "$smoke_dir/sweep.jsonl" --stats STATS_sweep.json
python3 -c "import json; json.load(open('STATS_sweep.json'))" \
  || { echo "STATS_sweep.json is not valid JSON"; exit 1; }
echo "metrics snapshot archived in STATS_sweep.json"

echo "== SIGKILL-mid-sweep -> resume: final report byte-identical =="
# A checkpointed sweep is killed hard (SIGKILL, no cleanup) partway
# through a 10k-config grid, resumed from whatever prefix the kill left
# (batched fsync means the tail may be torn), and the resumed report
# must be byte-for-byte the report of an uninterrupted run.
kill_grid="RobEntry=32,48,64,80,96,112,128,144,160,176"
kill_grid+=";FetchBufferEntry=8,12,16,20,24,28,32,36,40,44"
kill_grid+=";LdqStqEntry=8,12,16,20,24,28,32,36,40,44"
kill_grid+=";IntPhyRegister=48,56,64,72,80,88,96,104,112,120"
./build/tools/autopower sweep --model "$smoke_dir/model.ap" \
  --grid "$kill_grid" --workloads dhrystone --threads 2 --top 16 \
  --checkpoint "$smoke_dir/kill.ckpt" \
  --out "$smoke_dir/killed.jsonl" &
kill_sweep_pid=$!
sleep 1
kill -KILL "$kill_sweep_pid" 2>/dev/null \
  || echo "note: sweep finished before the kill landed (fast host)"
wait "$kill_sweep_pid" && true
ckpt_rows="$(($(wc -l < "$smoke_dir/kill.ckpt") - 1))"
echo "checkpoint holds $ckpt_rows of 10000 configs at the kill point"
./build/tools/autopower sweep --model "$smoke_dir/model.ap" \
  --grid "$kill_grid" --workloads dhrystone --threads 2 --top 16 \
  --checkpoint "$smoke_dir/kill.ckpt" --resume \
  --out "$smoke_dir/resumed.jsonl"
./build/tools/autopower sweep --model "$smoke_dir/model.ap" \
  --grid "$kill_grid" --workloads dhrystone --threads 2 --top 16 \
  --out "$smoke_dir/uninterrupted.jsonl"
diff "$smoke_dir/resumed.jsonl" "$smoke_dir/uninterrupted.jsonl" \
  || { echo "resumed sweep report diverged from the uninterrupted run"; \
       exit 1; }
echo "resumed report byte-identical to the uninterrupted run"

echo "== explore smoke: seed-pinned determinism + SIGKILL -> resume =="
# Two identical seed-pinned explore runs over the 10k-config kill grid
# must emit byte-identical frontiers; a third run is SIGKILLed mid-search
# and resumed from its checkpoint, and the resumed frontier must be
# byte-identical to the uninterrupted one too.
explore_args=(--model "$smoke_dir/model.ap" --grid "$kill_grid"
  --workloads dhrystone,qsort --base C8 --seed 42 --population 64
  --generations 40 --verify-top 32 --threads 2)
./build/tools/autopower explore "${explore_args[@]}" \
  --out "$smoke_dir/explore_a.jsonl" --stats STATS_explore.json
python3 -c "import json; json.load(open('STATS_explore.json'))" \
  || { echo "STATS_explore.json is not valid JSON"; exit 1; }
./build/tools/autopower explore "${explore_args[@]}" \
  --out "$smoke_dir/explore_b.jsonl"
diff "$smoke_dir/explore_a.jsonl" "$smoke_dir/explore_b.jsonl" \
  || { echo "seed-pinned explore reruns diverged"; exit 1; }
./build/tools/autopower explore "${explore_args[@]}" \
  --checkpoint "$smoke_dir/explore_kill.ckpt" \
  --out "$smoke_dir/explore_killed.jsonl" &
explore_pid=$!
sleep 1
kill -KILL "$explore_pid" 2>/dev/null \
  || echo "note: explore finished before the kill landed (fast host)"
wait "$explore_pid" && true
./build/tools/autopower explore "${explore_args[@]}" \
  --checkpoint "$smoke_dir/explore_kill.ckpt" --resume \
  --out "$smoke_dir/explore_resumed.jsonl"
diff "$smoke_dir/explore_resumed.jsonl" "$smoke_dir/explore_a.jsonl" \
  || { echo "resumed explore frontier diverged from the uninterrupted run"; \
       exit 1; }
echo "explore frontier byte-identical across reruns and SIGKILL -> resume"

echo "== bench_explore (self-check: optimum equality + >=10x fewer simulator cells) =="
# The full 1e5-cell acceptance grid: the exhaustive sweep baseline is
# the dominant cost (~half a minute on one core); scale with
# AUTOPOWER_BENCH_EXPLORE_CELLS if that ever outgrows the CI budget —
# the JSON records grid_configs so the scale stays explicit.
AUTOPOWER_BENCH_EXPLORE_CELLS="${AUTOPOWER_BENCH_EXPLORE_CELLS:-100000}" \
  ./build/bench/bench_explore --json BENCH_explore.json
echo "headline numbers in BENCH_explore.json"

echo "== SIMD dual-tier byte-identity (sweep + batch JSONL) =="
# The same sweep and batch runs under AUTOPOWER_SIMD=scalar must produce
# byte-identical output files to the best-tier runs above/below: the
# vector kernels promise per-row op-order equality, so any diff here is
# a kernel bug, not a tolerance question.
AUTOPOWER_SIMD=scalar ./build/tools/autopower sweep \
  --model "$smoke_dir/model.ap" \
  --grid "RobEntry=64,96" --workloads dhrystone,qsort --threads 2 \
  --out "$smoke_dir/sweep_scalar.jsonl"
diff "$smoke_dir/sweep.jsonl" "$smoke_dir/sweep_scalar.jsonl" \
  || { echo "sweep output differs between SIMD tiers"; exit 1; }
echo "sweep JSONL byte-identical across tiers"

echo "== daemon smoke: 100 requests over loopback, bit-identical to batch =="
# A real `autopower serve` process on an ephemeral port; the same 100
# requests go through the daemon (via tools/serve_client.py) and through
# the `batch` subcommand, and the response files must be byte-identical.
# SIGTERM must drain gracefully: in-flight responses delivered, exit 0.
python3 - "$smoke_dir/daemon_reqs.jsonl" <<'EOF'
import sys
configs = ["C2", "C5", "C9", "C13"]
workloads = ["dhrystone", "qsort", "median", "towers"]
with open(sys.argv[1], "w") as f:
    for i in range(100):
        mode = ', "mode": "per_component"' if i % 7 == 0 else ""
        f.write('{"config": "%s", "workload": "%s"%s}\n'
                % (configs[i % 4], workloads[(i // 4) % 4], mode))
EOF
daemon_port="$(python3 -c 'import socket; s = socket.socket();
s.bind(("127.0.0.1", 0)); print(s.getsockname()[1]); s.close()')"
./build/tools/autopower serve --model "$smoke_dir/model.ap" \
  --port "$daemon_port" --threads 2 &
daemon_pid=$!
python3 tools/serve_client.py --port "$daemon_port" \
  --requests "$smoke_dir/daemon_reqs.jsonl" --out "$smoke_dir/daemon_out.jsonl"
./build/tools/autopower batch --model "$smoke_dir/model.ap" \
  --requests "$smoke_dir/daemon_reqs.jsonl" --out "$smoke_dir/batch_out.jsonl"
diff "$smoke_dir/daemon_out.jsonl" "$smoke_dir/batch_out.jsonl" \
  || { echo "daemon responses diverged from batch"; exit 1; }
AUTOPOWER_SIMD=scalar ./build/tools/autopower batch \
  --model "$smoke_dir/model.ap" \
  --requests "$smoke_dir/daemon_reqs.jsonl" \
  --out "$smoke_dir/batch_scalar.jsonl"
diff "$smoke_dir/batch_out.jsonl" "$smoke_dir/batch_scalar.jsonl" \
  || { echo "batch output differs between SIMD tiers"; exit 1; }
echo "batch JSONL byte-identical across tiers"
kill -TERM "$daemon_pid"
wait "$daemon_pid" \
  || { echo "daemon did not drain cleanly on SIGTERM"; exit 1; }
echo "daemon responses byte-identical to batch; SIGTERM drained with exit 0"

echo "== daemon hot-swap smoke: in-stream reload + SIGHUP reload-all =="
# Model B: same pipeline, a different training set — a different archive
# fingerprint AND different predictions, so a stale response is visible.
./build/tools/autopower train --known C1,C8 --out "$smoke_dir/model_b.ap" \
  --threads 2
cp "$smoke_dir/model.ap" "$smoke_dir/live.ap"
swap_port="$(python3 -c 'import socket; s = socket.socket();
s.bind(("127.0.0.1", 0)); print(s.getsockname()[1]); s.close()')"
./build/tools/autopower serve --model "main=$smoke_dir/live.ap" \
  --port "$swap_port" --threads 2 &
swap_pid=$!
# Overwrite the live archive while the daemon still serves the old
# snapshot, then stream [50 reqs | {"cmd":"reload"} | same 50 reqs] on
# ONE connection.  The swap linearizes with admission, so the first half
# must be byte-identical to `batch` under model A and the second half to
# `batch` under model B — no half-swapped or memo-stale response ever.
cp "$smoke_dir/model_b.ap" "$smoke_dir/live.ap"
head -n 50 "$smoke_dir/daemon_reqs.jsonl" > "$smoke_dir/swap_reqs.jsonl"
{
  cat "$smoke_dir/swap_reqs.jsonl"
  echo '{"cmd": "reload"}'
  cat "$smoke_dir/swap_reqs.jsonl"
} > "$smoke_dir/swap_stream.jsonl"
python3 tools/serve_client.py --port "$swap_port" \
  --requests "$smoke_dir/swap_stream.jsonl" --out "$smoke_dir/swap_out.jsonl"
./build/tools/autopower batch --model "$smoke_dir/model.ap" \
  --requests "$smoke_dir/swap_reqs.jsonl" \
  --out "$smoke_dir/swap_oracle_a.jsonl"
./build/tools/autopower batch --model "$smoke_dir/model_b.ap" \
  --requests "$smoke_dir/swap_reqs.jsonl" \
  --out "$smoke_dir/swap_oracle_b.jsonl"
head -n 50 "$smoke_dir/swap_out.jsonl" > "$smoke_dir/swap_first.jsonl"
diff "$smoke_dir/swap_first.jsonl" "$smoke_dir/swap_oracle_a.jsonl" \
  || { echo "pre-reload half diverged from model A batch output"; exit 1; }
sed -n '51p' "$smoke_dir/swap_out.jsonl" \
  | grep -q '"cmd": "reload", "ok": true' \
  || { echo "in-stream reload did not succeed"; exit 1; }
# The post-reload half carries connection indices 51..100; rewrite them
# to 0..49 before diffing against the offline oracle.
tail -n 50 "$smoke_dir/swap_out.jsonl" | python3 -c '
import re, sys
for i, line in enumerate(sys.stdin):
    sys.stdout.write(re.sub(r"^\{\"index\": \d+,", "{\"index\": %d," % i,
                            line, count=1))' > "$smoke_dir/swap_second.jsonl"
diff "$smoke_dir/swap_second.jsonl" "$smoke_dir/swap_oracle_b.jsonl" \
  || { echo "post-reload half diverged from model B batch output"; exit 1; }
echo "reload halves byte-identical to each model's batch output"

# SIGHUP leg: flip the archive back to model A and reload every slot via
# the signal.  The swap applies asynchronously (the acceptor thread picks
# it up), so poll until responses match model A again.
cp "$smoke_dir/model.ap" "$smoke_dir/live.ap"
kill -HUP "$swap_pid"
hup_ok=""
for _ in $(seq 1 100); do
  python3 tools/serve_client.py --port "$swap_port" \
    --requests "$smoke_dir/swap_reqs.jsonl" --out "$smoke_dir/hup_out.jsonl"
  if diff -q "$smoke_dir/hup_out.jsonl" "$smoke_dir/swap_oracle_a.jsonl" \
      >/dev/null; then
    hup_ok=1
    break
  fi
  sleep 0.1
done
[ -n "$hup_ok" ] \
  || { echo "SIGHUP reload never swapped back to model A"; exit 1; }
kill -TERM "$swap_pid"
wait "$swap_pid" \
  || { echo "hot-swap daemon did not drain cleanly on SIGTERM"; exit 1; }
echo "SIGHUP swapped the slot back; daemon drained with exit 0"

echo "== proptest: differential oracles under AddressSanitizer =="
# Property-based differential suite (reference vs fast paths) with the
# case count bounded so the stage fits a CI budget.  A failing property
# prints its base seed and a reproducing AUTOPOWER_PROPTEST_SEED line;
# re-run ./build-asan/tests/test_differential --seed=N to chase it.
cmake --preset asan
cmake --build --preset asan \
  --target test_differential test_simd test_explore autopower_tests \
  -j "$(nproc)"
ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}" \
  timeout 900 ./build-asan/tests/test_differential --cases 60

echo "== proptest: explore optimizer oracles under AddressSanitizer =="
# Non-dominated sort vs the peeling oracle, crowding/grid-operator
# invariants, seed/thread/resume determinism, and the frontier-equals-
# exhaustive-Pareto differential, each over 200 randomized cases.
ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}" \
  timeout 900 ./build-asan/tests/test_explore --cases 200

echo "== proptest: SIMD kernel oracles under AddressSanitizer =="
# Every vector kernel vs its scalar twin over random sizes, lead offsets
# and NaN palettes — under ASan this also checks the unaligned loads and
# gather index arithmetic never read past a buffer.
ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}" \
  timeout 900 ./build-asan/tests/test_simd --cases 60

echo "== proptest: archive fuzz under AddressSanitizer =="
ASAN_OPTIONS="halt_on_error=1 ${ASAN_OPTIONS:-}" \
  timeout 300 ./build-asan/tests/autopower_tests \
  --gtest_filter='Robustness.*'

echo "== configure (tsan preset) =="
cmake --preset tsan

echo "== build tsan targets =="
cmake --build --preset tsan \
  --target test_serve autopower_tests test_fault test_daemon test_simd \
  test_explore -j "$(nproc)"

echo "== run test_serve under ThreadSanitizer =="
# halt_on_error makes a race fail the run instead of just logging it.
# The suite includes the shared-structural-memo sweep tests, so this run
# race-checks concurrent StructuralSimCache fills and lookups too.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" ./build-tsan/tests/test_serve

echo "== run shared-memo sweep path under ThreadSanitizer (explicit) =="
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  ./build-tsan/tests/test_serve \
  --gtest_filter='SweepTest.ConcurrentSweepsShareOneStructuralCache:SweepTest.ThreadCountDoesNotChangeReport:EngineTest.TraceModeSharesStructuralCacheAcrossWorkers:EngineTest.FaultedDrainKeepsSiblingResultsBitIdentical:StreamSweepTest.OversubscribedThreadRequestIsClampedNotHonoured:StreamSweepTest.ResumeAfterTornTailIsByteIdentical:StreamSweepTest.CheckpointedRunMatchesPlainRunAndRoundTrips'

echo "== proptest: fault-injection suite under ThreadSanitizer =="
# Every registered fault site is forced to fire (test_fault), including
# probabilistic faults on the threaded batch/sweep paths, so TSan sees
# the error-propagation and drain paths under contention.  --seed=N
# reruns a specific base seed.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  timeout 600 ./build-tsan/tests/test_fault

echo "== run daemon tests under ThreadSanitizer =="
# Concurrent loopback connections share one engine/EvalCache, so this
# run race-checks the reader/dispatcher/deliver paths and the drain
# handshake under contention.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  timeout 600 ./build-tsan/tests/test_daemon --gtest_filter='DaemonTest.*'

echo "== run SIMD dispatch + cross-tier tests under ThreadSanitizer =="
# set_active_tier publishes the kernel table with release/acquire
# ordering; the cross-tier GBT tests flip tiers while model code reads
# the table, so TSan checks the dispatch handoff.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  timeout 600 ./build-tsan/tests/test_simd --cases 20

echo "== run threaded explore scoring/verification under ThreadSanitizer =="
# The seed/thread-invariance property runs every search at threads 1 and
# threads 3, so TSan sees the chunked surrogate scoring and the
# evaluate_configs claim loop under contention.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  timeout 600 ./build-tsan/tests/test_explore --cases 10 \
  --gtest_filter='ExploreSearch.SeedAndThreadCountInvariance'

echo "== run parallel-train tests under ThreadSanitizer =="
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  ./build-tsan/tests/autopower_tests \
  --gtest_filter='AutoPowerTest.ParallelTrainArchiveByteIdentical'

echo "== run metrics-registry tests under ThreadSanitizer =="
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  ./build-tsan/tests/autopower_tests \
  --gtest_filter='MetricsRegistryTest.*'

echo "OK: benches pass their bars and the threaded paths are race-clean"
