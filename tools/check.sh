#!/usr/bin/env bash
# Race-checks the serving subsystem: builds the ThreadSanitizer preset and
# runs the test_serve suite under it.  Run from anywhere; exits non-zero
# on a build failure, test failure, or any TSan report.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== configure (tsan preset) =="
cmake --preset tsan

echo "== build test_serve =="
cmake --build --preset tsan --target test_serve -j "$(nproc)"

echo "== run test_serve under ThreadSanitizer =="
# halt_on_error makes a race fail the run instead of just logging it.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" ./build-tsan/tests/test_serve

echo "OK: test_serve is race-clean"
