#!/usr/bin/env bash
# Repo health check: builds the default preset, runs the self-checking
# throughput benches (training core + batch serving + structural-memo
# sweep) and collects their headline numbers into BENCH_train.json and
# BENCH_sim.json, then race-checks the threaded subsystems under
# ThreadSanitizer.  Run from anywhere; exits non-zero on any build
# failure, bench self-check failure, test failure, or TSan report.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "== configure + build (default preset) =="
cmake --preset default
cmake --build --preset default -j "$(nproc)"

echo "== bench_train_throughput (self-check: bit-identity + speedup bars) =="
./build/bench/bench_train_throughput --json /tmp/autopower_bench_train.json

echo "== bench_serve_throughput (self-check: bit-identity + speedup bar) =="
./build/bench/bench_serve_throughput --json /tmp/autopower_bench_serve.json

echo "== write BENCH_train.json =="
{
  printf '{\n  "train":\n'
  sed 's/^/  /' /tmp/autopower_bench_train.json | sed '$s/$/,/'
  printf '  "serve":\n'
  sed 's/^/  /' /tmp/autopower_bench_serve.json
  printf '}\n'
} > BENCH_train.json
echo "headline numbers in BENCH_train.json"

echo "== bench_sim_throughput (self-check: bit-identity + sweep speedup bars) =="
./build/bench/bench_sim_throughput --json BENCH_sim.json
echo "headline numbers in BENCH_sim.json"

echo "== configure (tsan preset) =="
cmake --preset tsan

echo "== build tsan targets =="
cmake --build --preset tsan --target test_serve autopower_tests -j "$(nproc)"

echo "== run test_serve under ThreadSanitizer =="
# halt_on_error makes a race fail the run instead of just logging it.
# The suite includes the shared-structural-memo sweep tests, so this run
# race-checks concurrent StructuralSimCache fills and lookups too.
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" ./build-tsan/tests/test_serve

echo "== run shared-memo sweep path under ThreadSanitizer (explicit) =="
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  ./build-tsan/tests/test_serve \
  --gtest_filter='SweepTest.ConcurrentSweepsShareOneStructuralCache:SweepTest.ThreadCountDoesNotChangeReport:EngineTest.TraceModeSharesStructuralCacheAcrossWorkers'

echo "== run parallel-train tests under ThreadSanitizer =="
TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}" \
  ./build-tsan/tests/autopower_tests \
  --gtest_filter='AutoPowerTest.ParallelTrainArchiveByteIdentical'

echo "OK: benches pass their bars and the threaded paths are race-clean"
