// autopower — command-line interface to the AutoPower library.
//
// Subcommands:
//   list                                  show configurations and workloads
//   train    --known C1,C15 --out m.ap    train and persist a model
//            [--threads N]                parallel sub-model fitting
//   predict  --model m.ap --config C8 --workload dhrystone [--per-component]
//   evaluate --model m.ap --known C1,C15 [--threads N]
//   trace    --model m.ap --config C3 --workload gemm [--csv out.csv]
//   batch    --model m.ap --requests reqs.jsonl [--out results.jsonl]
//            [--threads N]                concurrent JSONL batch inference
//   sweep    --model m.ap --grid "RobEntry=64,96;FetchWidth=4,8"
//            --workloads dhrystone,qsort [--base C8] [--rank ipc_per_watt]
//            [--top K] [--out sweep.jsonl] [--threads N] [--progress]
//            [--checkpoint sweep.ckpt] [--resume] [--memory-budget 64M]
//                                          streaming parallel design-space
//                                          sweep with a ranked JSONL report,
//                                          crash-safe checkpoint/resume and
//                                          a bounded structural-cache budget
//   serve    --model [name=]m.ap [--model other=o.ap ...] --port 9410
//            [--queue-depth N] [--max-connections N] [--max-batch N]
//            [--threads N]                 resident JSONL-over-TCP daemon;
//                                          --model is repeatable (a model
//                                          zoo; the first one is the
//                                          default route, requests pick one
//                                          with "model": "name"); SIGHUP or
//                                          {"cmd": "reload"} hot-swap the
//                                          archives without a restart;
//                                          SIGINT/SIGTERM drain gracefully
//
// Observability: `--stats <path>` (train, evaluate, batch, sweep) writes
// one JSON snapshot of the process-wide util::MetricsRegistry after the
// command finishes — request latency, queue wait, cache hit rates,
// per-sub-model fit timings, structural-memo lane counters (field
// glossary in README "Observability").  `sweep --progress` additionally
// prints a periodic cells-done line to stderr while the sweep runs.
//
// The CLI drives exactly the same public API the examples use; a model
// trained here can be reloaded by any program linking the library.

#include <csignal>

#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/autopower.hpp"
#include "exp/harness.hpp"
#include "exp/trace.hpp"
#include "serve/daemon.hpp"
#include "serve/engine.hpp"
#include "serve/jsonl.hpp"
#include "explore/explore.hpp"
#include "serve/registry.hpp"
#include "serve/sweep.hpp"
#include "util/io.hpp"
#include "util/metrics.hpp"
#include "util/parse.hpp"
#include "util/simd.hpp"
#include "util/thread_pool.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

using namespace autopower;

namespace {

using ArgMap = std::map<std::string, std::string>;

/// Which flags a subcommand accepts: valued flags consume the next token,
/// boolean flags take none, repeatable flags are valued flags that may be
/// given more than once (occurrences joined with '\x1f' in the ArgMap —
/// the same cannot-appear-in-a-value separator the serving memo keys use;
/// split them back with split_multi_flag).
struct FlagSpec {
  std::set<std::string> valued;
  std::set<std::string> boolean;
  std::set<std::string> repeatable;
};

ArgMap parse_flags(int argc, char** argv, int first, const FlagSpec& spec) {
  ArgMap flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw util::InvalidArgument("expected a --flag, got: " + key);
    }
    key = key.substr(2);
    const bool is_repeatable = spec.repeatable.count(key) > 0;
    const bool is_valued = is_repeatable || spec.valued.count(key) > 0;
    if (!is_valued && spec.boolean.count(key) == 0) {
      throw util::InvalidArgument("unknown flag --" + key);
    }
    AP_REQUIRE(is_repeatable || flags.count(key) == 0,
               "duplicate flag --" + key);
    if (is_valued) {
      AP_REQUIRE(i + 1 < argc, "flag --" + key + " needs a value");
      const std::string value = argv[++i];
      AP_REQUIRE(value.find('\x1f') == std::string::npos,
                 "flag --" + key + " value contains a control character");
      const auto it = flags.find(key);
      if (it == flags.end()) {
        flags[key] = value;
      } else {
        it->second += '\x1f';
        it->second += value;
      }
    } else {
      flags[key] = "1";
    }
  }
  return flags;
}

/// Splits a repeatable flag's joined ArgMap entry back into the values
/// given on the command line, in order.
std::vector<std::string> split_multi_flag(const std::string& joined) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (;;) {
    const std::size_t sep = joined.find('\x1f', start);
    if (sep == std::string::npos) {
      out.push_back(joined.substr(start));
      return out;
    }
    out.push_back(joined.substr(start, sep - start));
    start = sep + 1;
  }
}

/// Every integer flag routes through util::parse_int (full-consume
/// std::from_chars): trailing garbage ("--threads 4x"), overflow, leading
/// '+' and whitespace are all rejected instead of silently truncated.
int parse_int_flag(const ArgMap& flags, const std::string& key, int fallback,
                   int min) {
  const auto it = flags.find(key);
  if (it == flags.end()) return fallback;
  return util::parse_int(it->second, "--" + key, min);
}

int parse_threads(const ArgMap& flags) {
  return parse_int_flag(flags, "threads", 1, 1);
}

/// --stats <path>: one JSON snapshot of the process-wide registry,
/// written after the command's work (and any export_metrics calls) is
/// done.  The write itself is checked like any other report stream.
void write_stats_snapshot(const ArgMap& flags) {
  const auto it = flags.find("stats");
  if (it == flags.end()) return;
  std::ofstream out(it->second);
  AP_REQUIRE(out.good(), "cannot open stats file: " + it->second);
  out << util::MetricsRegistry::global().to_json() << '\n';
  util::flush_and_check(out, "stats snapshot " + it->second);
  std::cerr << "metrics snapshot written to " << it->second << "\n";
}

std::string require_flag(const ArgMap& flags, const std::string& key) {
  const auto it = flags.find(key);
  AP_REQUIRE(it != flags.end(), "missing required flag --" + key);
  return it->second;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  AP_REQUIRE(!out.empty(), "empty list");
  return out;
}

core::EvalContext make_context(const sim::PerfSimulator& simulator,
                               const std::string& config,
                               const std::string& wl) {
  core::EvalContext ctx;
  ctx.cfg = &arch::boom_config(config);
  ctx.workload = wl;
  const auto& profile = workload::workload_by_name(wl);
  ctx.program = workload::program_features(profile);
  ctx.events = simulator.simulate(*ctx.cfg, profile);
  return ctx;
}

int cmd_list() {
  std::cout << "Configurations (paper Table II):\n";
  util::TablePrinter table({"Config", "FetchWidth", "DecodeWidth",
                            "RobEntry", "IntIssueWidth", "CacheWay"});
  for (const auto& cfg : arch::boom_design_space()) {
    table.add_row({cfg.name(),
                   std::to_string(cfg.value(arch::HwParam::kFetchWidth)),
                   std::to_string(cfg.value(arch::HwParam::kDecodeWidth)),
                   std::to_string(cfg.value(arch::HwParam::kRobEntry)),
                   std::to_string(cfg.value(arch::HwParam::kIntIssueWidth)),
                   std::to_string(cfg.value(arch::HwParam::kCacheWay))});
  }
  table.print(std::cout);
  std::cout << "\nWorkloads: ";
  for (const auto& w : workload::riscv_tests_workloads()) {
    std::cout << w.name << ' ';
  }
  std::cout << "(evaluation), ";
  for (const auto& w : workload::trace_workloads()) {
    std::cout << w.name << ' ';
  }
  std::cout << "(power traces)\n";
  return 0;
}

int cmd_train(const ArgMap& flags) {
  const auto known = split_csv(require_flag(flags, "known"));
  const auto out_path = require_flag(flags, "out");

  sim::PerfSimulator simulator;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(simulator, golden);

  core::AutoPowerModel model;
  model.train(data.contexts_of(known), golden,
              static_cast<std::size_t>(parse_threads(flags)));
  model.save_to_file(out_path);
  std::cout << "Trained on " << known.size()
            << " configurations; model written to " << out_path << "\n";
  simulator.structural_cache()->export_metrics(
      util::MetricsRegistry::global());
  write_stats_snapshot(flags);
  return 0;
}

int cmd_predict(const ArgMap& flags) {
  core::AutoPowerModel model;
  model.load_from_file(require_flag(flags, "model"));
  const auto config = require_flag(flags, "config");
  const auto wl = require_flag(flags, "workload");

  sim::PerfSimulator simulator;
  const auto ctx = make_context(simulator, config, wl);
  const auto result = model.predict(ctx);

  if (flags.count("per-component") > 0) {
    util::TablePrinter table(
        {"Component", "Clock (mW)", "SRAM (mW)", "Logic (mW)", "Total"});
    for (const auto& cp : result.components) {
      table.add_row({std::string(arch::component_name(cp.component)),
                     util::fmt(cp.groups.clock), util::fmt(cp.groups.sram),
                     util::fmt(cp.groups.logic()),
                     util::fmt(cp.groups.total())});
    }
    table.print(std::cout);
  }
  const auto totals = result.totals();
  std::cout << config << "/" << wl << ": total " << util::fmt(totals.total())
            << " mW (clock " << util::fmt(totals.clock) << ", sram "
            << util::fmt(totals.sram) << ", logic "
            << util::fmt(totals.logic()) << ")\n";
  return 0;
}

int cmd_evaluate(const ArgMap& flags) {
  core::AutoPowerModel model;
  model.load_from_file(require_flag(flags, "model"));
  const auto known = split_csv(require_flag(flags, "known"));
  const int threads = parse_threads(flags);

  sim::PerfSimulator simulator;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(simulator, golden);

  exp::MethodResult result;
  if (threads <= 1) {
    result = exp::evaluate_predictor(
        data, known, "AutoPower",
        [&](const core::EvalContext& ctx) { return model.predict_total(ctx); });
  } else {
    // Parallel predict over the held-out grid: predict* const methods are
    // safe for concurrent use, so the workers share the model directly.
    const auto held_out = data.samples_excluding(known);
    result.method = "AutoPower";
    result.actual.resize(held_out.size());
    result.predicted.resize(held_out.size());
    std::atomic<std::size_t> next{0};
    util::ThreadPool pool(static_cast<std::size_t>(threads));
    for (std::size_t w = 0; w < pool.thread_count(); ++w) {
      pool.submit([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= held_out.size()) return;
          result.actual[i] = held_out[i]->golden.total();
          result.predicted[i] = model.predict_total(held_out[i]->ctx);
        }
      });
    }
    pool.wait_idle();
    // The pool swallows task exceptions so sibling workers keep draining;
    // a lost worker here means holes in predicted[] — report it instead
    // of printing a silently-wrong accuracy summary.
    if (const auto failures = pool.task_failures(); failures.count > 0) {
      throw util::Error("evaluate worker failed (" +
                        std::to_string(failures.count) +
                        " task(s)): " + failures.first_error);
    }
    result.accuracy = exp::compute_accuracy(result.actual, result.predicted);
  }
  std::cout << "Held-out accuracy (excluding ";
  for (const auto& k : known) std::cout << k << ' ';
  std::cout << "): " << result.accuracy.to_string() << "\n";
  simulator.structural_cache()->export_metrics(
      util::MetricsRegistry::global());
  write_stats_snapshot(flags);
  return 0;
}

int cmd_batch(const ArgMap& flags) {
  const auto model_path = require_flag(flags, "model");
  const auto requests_path = require_flag(flags, "requests");
  std::size_t threads = static_cast<std::size_t>(parse_threads(flags));
  if (flags.count("threads") == 0) {
    threads = std::max(1u, std::thread::hardware_concurrency());
  }

  std::vector<serve::BatchRequest> requests;
  {
    std::ifstream in(requests_path);
    AP_REQUIRE(in.good(), "cannot open requests file: " + requests_path);
    requests = serve::read_requests(in);
  }
  AP_REQUIRE(!requests.empty(), "no requests in " + requests_path);

  serve::ModelRegistry registry;
  serve::BatchEngine engine(registry.get(model_path), {.threads = threads});
  const auto responses = engine.run(requests);

  if (const auto it = flags.find("out"); it != flags.end()) {
    std::ofstream out(it->second);
    AP_REQUIRE(out.good(), "cannot open output file: " + it->second);
    serve::write_responses(out, responses);
    // A full disk or closed pipe can swallow buffered writes without any
    // operator<< reporting it; re-check after the final flush so a
    // truncated report exits non-zero instead of silently "succeeding".
    util::flush_and_check(out, "batch report " + it->second);
    std::size_t failed = 0;
    for (const auto& r : responses) {
      if (!r.ok) ++failed;
    }
    const auto stats = engine.cache().stats();
    std::cerr << responses.size() << " responses written to " << it->second
              << " (" << failed << " failed; " << threads << " threads, "
              << stats.hits << " cache hits / " << stats.misses
              << " misses)\n";
  } else {
    serve::write_responses(std::cout, responses);
    util::flush_and_check(std::cout, "batch report (stdout)");
  }
  write_stats_snapshot(flags);
  return 0;
}

int cmd_sweep(const ArgMap& flags) {
  core::AutoPowerModel model;
  model.load_from_file(require_flag(flags, "model"));

  serve::SweepSpec spec;
  if (const auto it = flags.find("base"); it != flags.end()) {
    spec.base = it->second;
  }
  spec.axes = serve::parse_grid(require_flag(flags, "grid"));
  spec.workloads = split_csv(require_flag(flags, "workloads"));
  spec.threads = static_cast<std::size_t>(parse_threads(flags));
  if (flags.count("threads") == 0) {
    spec.threads = std::max(1u, std::thread::hardware_concurrency());
  }
  if (const auto it = flags.find("rank"); it != flags.end()) {
    spec.metric = serve::sweep_metric_from_string(it->second);
  }
  spec.top = static_cast<std::size_t>(parse_int_flag(flags, "top", 0, 1));
  if (const auto it = flags.find("checkpoint"); it != flags.end()) {
    spec.checkpoint = it->second;
  }
  spec.resume = flags.count("resume") > 0;
  AP_REQUIRE(!spec.resume || !spec.checkpoint.empty(),
             "--resume needs --checkpoint");
  if (const auto it = flags.find("memory-budget"); it != flags.end()) {
    spec.memory_budget =
        util::parse_size_bytes(it->second, "--memory-budget");
  }

  // --progress: a monitor thread polls the process-wide sweep-cells
  // counter and reports to stderr while the workers run.  The expected
  // cell count is the grid size times the workload count.
  std::size_t expected_cells = spec.workloads.size();
  for (const auto& axis : spec.axes) expected_cells *= axis.values.size();
  std::atomic<bool> sweep_done{false};
  std::thread monitor;
  if (flags.count("progress") > 0) {
    auto& cells = util::MetricsRegistry::global().counter(
        "serve.sweep.cells");
    const auto start_cells = cells.value();
    monitor = std::thread([&sweep_done, &cells, start_cells,
                           expected_cells] {
      int ticks = 0;
      while (!sweep_done.load(std::memory_order_relaxed)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
        if (++ticks % 10 != 0) continue;  // report every ~1 s
        std::cerr << "sweep progress: " << (cells.value() - start_cells)
                  << "/" << expected_cells << " cells\n";
      }
    });
  }

  serve::SweepReport report;
  try {
    report = serve::run_sweep(model, spec);
  } catch (...) {
    sweep_done.store(true, std::memory_order_relaxed);
    if (monitor.joinable()) monitor.join();
    throw;
  }
  sweep_done.store(true, std::memory_order_relaxed);
  if (monitor.joinable()) monitor.join();

  std::ostream* out = &std::cout;
  std::ofstream file;
  if (const auto it = flags.find("out"); it != flags.end()) {
    file.open(it->second);
    AP_REQUIRE(file.good(), "cannot open output file: " + it->second);
    out = &file;
  }
  serve::write_sweep_report(*out, report);
  // Catch silently-truncated reports (full disk, closed pipe) and exit
  // non-zero; operator<< alone never reports buffered-write failures.
  util::flush_and_check(*out, out == &file
                                  ? "sweep report " + flags.at("out")
                                  : "sweep report (stdout)");

  std::size_t failed = 0;
  for (const auto& row : report.rows) failed += row.failed;
  std::cerr << report.configs << " configurations x " << spec.workloads.size()
            << " workloads = " << report.evaluations << " evaluations ("
            << failed << " failed; " << spec.threads
            << " threads; ranked by " << serve::to_string(spec.metric)
            << "; structural memo " << report.structural.hits << "/"
            << report.structural.misses << " hit/miss)\n";
  if (report.resumed > 0) {
    std::cerr << "resumed " << report.resumed << "/" << report.configs
              << " configurations from checkpoint " << spec.checkpoint
              << "\n";
  }
  if (!report.rows.empty()) {
    const auto& best = report.rows.front();
    std::cerr << "best: " << best.config.name() << " ("
              << util::fmt(best.mean_total_mw) << " mW, IPC "
              << util::fmt(best.mean_ipc) << ", "
              << util::fmt(best.ipc_per_watt) << " IPC/W)\n";
  }
  write_stats_snapshot(flags);
  return 0;
}

int cmd_explore(const ArgMap& flags) {
  core::AutoPowerModel model;
  model.load_from_file(require_flag(flags, "model"));

  explore::ExploreSpec spec;
  if (const auto it = flags.find("base"); it != flags.end()) {
    spec.base = it->second;
  }
  spec.axes = serve::parse_grid(require_flag(flags, "grid"));
  spec.workloads = split_csv(require_flag(flags, "workloads"));
  spec.threads = static_cast<std::size_t>(parse_threads(flags));
  if (flags.count("threads") == 0) {
    spec.threads = std::max(1u, std::thread::hardware_concurrency());
  }
  spec.seed =
      static_cast<std::uint64_t>(parse_int_flag(flags, "seed", 1, 0));
  spec.population = static_cast<std::size_t>(
      parse_int_flag(flags, "population", 64, 1));
  spec.generations = static_cast<std::size_t>(
      parse_int_flag(flags, "generations", 20, 1));
  spec.verify_top = static_cast<std::size_t>(
      parse_int_flag(flags, "verify-top", 16, 0));
  if (const auto it = flags.find("checkpoint"); it != flags.end()) {
    spec.checkpoint = it->second;
  }
  spec.resume = flags.count("resume") > 0;
  AP_REQUIRE(!spec.resume || !spec.checkpoint.empty(),
             "--resume needs --checkpoint");

  const explore::ExploreReport report = explore::run_explore(model, spec);

  std::ostream* out = &std::cout;
  std::ofstream file;
  if (const auto it = flags.find("out"); it != flags.end()) {
    file.open(it->second);
    AP_REQUIRE(file.good(), "cannot open output file: " + it->second);
    out = &file;
  }
  explore::write_frontier(*out, report);
  util::flush_and_check(*out, out == &file
                                  ? "explore frontier " + flags.at("out")
                                  : "explore frontier (stdout)");

  std::cerr << "explored " << report.grid_configs << "-cell grid in "
            << report.generations_run << " generations: "
            << report.candidates_scored << " candidates model-scored, "
            << report.verified << " simulator-verified, frontier of "
            << report.frontier.size() << "\n";
  if (report.resumed > 0) {
    std::cerr << "resumed " << report.resumed
              << " verified rows from checkpoint " << spec.checkpoint
              << "\n";
  }
  if (!report.elite_err.empty()) {
    std::cerr << "model-vs-simulator elite error by generation:";
    for (double e : report.elite_err) std::cerr << ' ' << util::fmt(e);
    std::cerr << "\n";
  }
  if (!report.frontier.empty()) {
    const auto& best = report.frontier.front();
    std::cerr << "best verified: " << best.row.config.name() << " ("
              << util::fmt(best.row.mean_total_mw) << " mW, IPC "
              << util::fmt(best.row.mean_ipc) << ", "
              << util::fmt(best.row.ipc_per_watt) << " IPC/W, area "
              << util::fmt(best.area) << ")\n";
  }
  write_stats_snapshot(flags);
  return 0;
}

/// Signal plumbing for `serve`: the handler may only call the
/// async-signal-safe Daemon::notify_stop().  Set before the handlers are
/// installed, cleared after serve() returns.
serve::Daemon* g_daemon = nullptr;

void handle_stop_signal(int) {
  if (g_daemon != nullptr) g_daemon->notify_stop();
}

void handle_reload_signal(int) {
  if (g_daemon != nullptr) g_daemon->notify_reload();
}

/// Parses one repeatable --model value: "name=path" binds a named slot,
/// a bare path binds the slot "default".  (Split at the FIRST '=': slot
/// names cannot contain '=' but paths may.)
serve::ModelSpec parse_model_spec(const std::string& value) {
  const auto eq = value.find('=');
  if (eq == std::string::npos) return {"default", value};
  serve::ModelSpec spec{value.substr(0, eq), value.substr(eq + 1)};
  AP_REQUIRE(!spec.name.empty() && !spec.path.empty(),
             "--model expects PATH or NAME=PATH, got: " + value);
  return spec;
}

int cmd_serve(const ArgMap& flags) {
  // All flag validation happens before the (slow) model loads, so a bad
  // --port fails fast with exit 1.
  std::vector<serve::ModelSpec> specs;
  for (const std::string& value :
       split_multi_flag(require_flag(flags, "model"))) {
    specs.push_back(parse_model_spec(value));
  }
  serve::DaemonOptions options;
  options.port = static_cast<std::uint16_t>(
      util::parse_int(require_flag(flags, "port"), "--port", 1, 65535));
  options.queue_depth =
      static_cast<std::size_t>(parse_int_flag(flags, "queue-depth", 1024, 1));
  options.max_connections = static_cast<std::size_t>(
      parse_int_flag(flags, "max-connections", 64, 1));
  options.max_batch =
      static_cast<std::size_t>(parse_int_flag(flags, "max-batch", 32, 1));
  options.engine.threads = static_cast<std::size_t>(parse_threads(flags));
  if (flags.count("threads") == 0) {
    options.engine.threads = std::max(1u, std::thread::hardware_concurrency());
  }

  serve::Daemon daemon(specs, options);

  g_daemon = &daemon;
  struct sigaction action {};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  (void)sigaction(SIGINT, &action, nullptr);
  (void)sigaction(SIGTERM, &action, nullptr);
  // SIGHUP = "re-read every --model archive and hot-swap" (the classic
  // daemon reload convention); also available in-band as {"cmd":"reload"}.
  struct sigaction reload_action {};
  reload_action.sa_handler = handle_reload_signal;
  sigemptyset(&reload_action.sa_mask);
  (void)sigaction(SIGHUP, &reload_action, nullptr);

  std::string model_list;
  for (const auto& name : daemon.model_names()) {
    if (!model_list.empty()) model_list += ",";
    model_list += name;
  }
  std::cerr << "autopower serve: listening on 127.0.0.1:" << daemon.port()
            << " (models " << model_list << ", queue " << options.queue_depth
            << ", max " << options.max_connections << " connections, "
            << options.engine.threads << " engine threads)\n";
  daemon.serve();
  g_daemon = nullptr;

  const auto stats = daemon.stats();
  std::cerr << "autopower serve: drained (" << stats.requests << " requests, "
            << stats.accepted << " connections, " << stats.shed << " shed, "
            << stats.deadline_expired << " deadline-expired, "
            << stats.net_errors << " net errors)\n";
  write_stats_snapshot(flags);
  return 0;
}

int cmd_trace(const ArgMap& flags) {
  core::AutoPowerModel model;
  model.load_from_file(require_flag(flags, "model"));
  const auto config = require_flag(flags, "config");
  const auto wl = require_flag(flags, "workload");

  sim::PerfSimulator simulator;
  power::GoldenPowerModel golden;
  const auto trace = exp::build_trace(simulator, golden,
                                      arch::boom_config(config),
                                      workload::workload_by_name(wl));
  const auto predicted = model.predict_trace(trace.windows);
  const auto err = exp::trace_errors(trace.golden_total, predicted);

  std::cout << trace.windows.size() << " windows of " << trace.window_cycles
            << " cycles; max err " << util::fmt_pct(err.max_power_error, 1)
            << ", min err " << util::fmt_pct(err.min_power_error, 1)
            << ", avg err " << util::fmt_pct(err.average_error, 1) << "\n";

  if (const auto it = flags.find("csv"); it != flags.end()) {
    std::ofstream csv(it->second);
    AP_REQUIRE(csv.good(), "cannot open csv output: " + it->second);
    csv << "window,cycle,golden_mw,predicted_mw\n";
    double cycle = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
      csv << i << ',' << cycle << ',' << trace.golden_total[i] << ','
          << predicted[i] << '\n';
      cycle += trace.windows[i].events.cycles();
    }
    util::flush_and_check(csv, "trace csv " + it->second);
    std::cout << "trace written to " << it->second << "\n";
  }
  return 0;
}

int usage() {
  std::cerr <<
      "usage: autopower <command> [flags]\n"
      "  list\n"
      "  train    --known C1,C15 --out model.ap [--threads N]"
      " [--stats stats.json]\n"
      "  predict  --model model.ap --config C8 --workload dhrystone"
      " [--per-component]\n"
      "  evaluate --model model.ap --known C1,C15 [--threads N]"
      " [--stats stats.json]\n"
      "  trace    --model model.ap --config C3 --workload gemm"
      " [--csv out.csv]\n"
      "  batch    --model model.ap --requests reqs.jsonl"
      " [--out results.jsonl] [--threads N] [--stats stats.json]\n"
      "  sweep    --model model.ap --grid \"RobEntry=64,96;FetchWidth=4,8\""
      " --workloads dhrystone,qsort\n"
      "           [--base C8] [--rank ipc_per_watt|ipc|power] [--top K]"
      " [--out sweep.jsonl] [--threads N] [--progress]"
      " [--checkpoint sweep.ckpt] [--resume] [--memory-budget 64M]"
      " [--stats stats.json]\n"
      "  explore  --model model.ap --grid \"RobEntry=64,96;FetchWidth=4,8\""
      " --workloads dhrystone,qsort\n"
      "           [--base C8] [--seed N] [--population N]"
      " [--generations N] [--verify-top K] [--out frontier.jsonl]\n"
      "           [--threads N] [--checkpoint explore.ckpt] [--resume]"
      " [--stats stats.json]\n"
      "  serve    --model [name=]model.ap [--model name2=other.ap ...]"
      " --port 9410\n"
      "           [--queue-depth N] [--max-connections N] [--max-batch N]"
      " [--threads N] [--stats stats.json]\n"
      "           (--model repeats; first is the default route; SIGHUP or"
      " {\"cmd\": \"reload\"} hot-swap archives)\n";
  return 2;
}

/// One dispatch row: the accepted flags and the handler.
struct Command {
  FlagSpec spec;
  int (*run)(const ArgMap&);
};

const std::map<std::string, Command>& commands() {
  static const std::map<std::string, Command> table = {
      {"list", {{}, [](const ArgMap&) { return cmd_list(); }}},
      {"train",
       {{.valued = {"known", "out", "threads", "stats"}, .boolean = {}},
        cmd_train}},
      {"predict",
       {{.valued = {"model", "config", "workload"},
         .boolean = {"per-component"}},
        cmd_predict}},
      {"evaluate",
       {{.valued = {"model", "known", "threads", "stats"}, .boolean = {}},
        cmd_evaluate}},
      {"trace",
       {{.valued = {"model", "config", "workload", "csv"}, .boolean = {}},
        cmd_trace}},
      {"batch",
       {{.valued = {"model", "requests", "out", "threads", "stats"},
         .boolean = {}},
        cmd_batch}},
      {"sweep",
       {{.valued = {"model", "grid", "workloads", "base", "rank", "top",
                    "out", "threads", "stats", "checkpoint",
                    "memory-budget"},
         .boolean = {"progress", "resume"}},
        cmd_sweep}},
      {"explore",
       {{.valued = {"model", "grid", "workloads", "base", "seed",
                    "population", "generations", "verify-top", "out",
                    "threads", "stats", "checkpoint"},
         .boolean = {"resume"}},
        cmd_explore}},
      {"serve",
       {{.valued = {"port", "queue-depth", "max-connections", "max-batch",
                    "threads", "stats"},
         .boolean = {},
         .repeatable = {"model"}},
        cmd_serve}},
  };
  return table;
}

}  // namespace

int main(int argc, char** argv) {
  // Resolve the SIMD dispatch tier up front so the util.simd.tier gauge
  // is present in every --stats snapshot, not only ones taken after a
  // kernel happened to run.
  util::simd::active_tier();
  if (argc < 2) return usage();
  const std::string command = argv[1];
  const auto it = commands().find(command);
  if (it == commands().end()) {
    std::cerr << "unknown command: " << command << "\n";
    return usage();
  }
  try {
    const ArgMap flags = parse_flags(argc, argv, 2, it->second.spec);
    return it->second.run(flags);
  } catch (const util::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
