// autopower — command-line interface to the AutoPower library.
//
// Subcommands:
//   list                                  show configurations and workloads
//   train    --known C1,C15 --out m.ap    train and persist a model
//   predict  --model m.ap --config C8 --workload dhrystone [--per-component]
//   evaluate --model m.ap --known C1,C15  accuracy on the held-out grid
//   trace    --model m.ap --config C3 --workload gemm [--csv out.csv]
//
// The CLI drives exactly the same public API the examples use; a model
// trained here can be reloaded by any program linking the library.

#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/autopower.hpp"
#include "exp/harness.hpp"
#include "exp/trace.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

using namespace autopower;

namespace {

using ArgMap = std::map<std::string, std::string>;

ArgMap parse_flags(int argc, char** argv, int first) {
  ArgMap flags;
  for (int i = first; i < argc; ++i) {
    std::string key = argv[i];
    if (key.rfind("--", 0) != 0) {
      throw util::InvalidArgument("expected a --flag, got: " + key);
    }
    key = key.substr(2);
    // Boolean flags take no value; valued flags consume the next token.
    if (key == "per-component") {
      flags[key] = "1";
    } else {
      AP_REQUIRE(i + 1 < argc, "flag --" + key + " needs a value");
      flags[key] = argv[++i];
    }
  }
  return flags;
}

std::string require_flag(const ArgMap& flags, const std::string& key) {
  const auto it = flags.find(key);
  AP_REQUIRE(it != flags.end(), "missing required flag --" + key);
  return it->second;
}

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream in(csv);
  std::string token;
  while (std::getline(in, token, ',')) {
    if (!token.empty()) out.push_back(token);
  }
  AP_REQUIRE(!out.empty(), "empty list");
  return out;
}

core::EvalContext make_context(const sim::PerfSimulator& simulator,
                               const std::string& config,
                               const std::string& wl) {
  core::EvalContext ctx;
  ctx.cfg = &arch::boom_config(config);
  ctx.workload = wl;
  const auto& profile = workload::workload_by_name(wl);
  ctx.program = workload::program_features(profile);
  ctx.events = simulator.simulate(*ctx.cfg, profile);
  return ctx;
}

int cmd_list() {
  std::cout << "Configurations (paper Table II):\n";
  util::TablePrinter table({"Config", "FetchWidth", "DecodeWidth",
                            "RobEntry", "IntIssueWidth", "CacheWay"});
  for (const auto& cfg : arch::boom_design_space()) {
    table.add_row({cfg.name(),
                   std::to_string(cfg.value(arch::HwParam::kFetchWidth)),
                   std::to_string(cfg.value(arch::HwParam::kDecodeWidth)),
                   std::to_string(cfg.value(arch::HwParam::kRobEntry)),
                   std::to_string(cfg.value(arch::HwParam::kIntIssueWidth)),
                   std::to_string(cfg.value(arch::HwParam::kCacheWay))});
  }
  table.print(std::cout);
  std::cout << "\nWorkloads: ";
  for (const auto& w : workload::riscv_tests_workloads()) {
    std::cout << w.name << ' ';
  }
  std::cout << "(evaluation), ";
  for (const auto& w : workload::trace_workloads()) {
    std::cout << w.name << ' ';
  }
  std::cout << "(power traces)\n";
  return 0;
}

int cmd_train(const ArgMap& flags) {
  const auto known = split_csv(require_flag(flags, "known"));
  const auto out_path = require_flag(flags, "out");

  sim::PerfSimulator simulator;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(simulator, golden);

  core::AutoPowerModel model;
  model.train(data.contexts_of(known), golden);
  model.save_to_file(out_path);
  std::cout << "Trained on " << known.size()
            << " configurations; model written to " << out_path << "\n";
  return 0;
}

int cmd_predict(const ArgMap& flags) {
  core::AutoPowerModel model;
  model.load_from_file(require_flag(flags, "model"));
  const auto config = require_flag(flags, "config");
  const auto wl = require_flag(flags, "workload");

  sim::PerfSimulator simulator;
  const auto ctx = make_context(simulator, config, wl);
  const auto result = model.predict(ctx);

  if (flags.count("per-component") > 0) {
    util::TablePrinter table(
        {"Component", "Clock (mW)", "SRAM (mW)", "Logic (mW)", "Total"});
    for (const auto& cp : result.components) {
      table.add_row({std::string(arch::component_name(cp.component)),
                     util::fmt(cp.groups.clock), util::fmt(cp.groups.sram),
                     util::fmt(cp.groups.logic()),
                     util::fmt(cp.groups.total())});
    }
    table.print(std::cout);
  }
  const auto totals = result.totals();
  std::cout << config << "/" << wl << ": total " << util::fmt(totals.total())
            << " mW (clock " << util::fmt(totals.clock) << ", sram "
            << util::fmt(totals.sram) << ", logic "
            << util::fmt(totals.logic()) << ")\n";
  return 0;
}

int cmd_evaluate(const ArgMap& flags) {
  core::AutoPowerModel model;
  model.load_from_file(require_flag(flags, "model"));
  const auto known = split_csv(require_flag(flags, "known"));

  sim::PerfSimulator simulator;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(simulator, golden);
  const auto result = exp::evaluate_predictor(
      data, known, "AutoPower",
      [&](const core::EvalContext& ctx) { return model.predict_total(ctx); });
  std::cout << "Held-out accuracy (excluding ";
  for (const auto& k : known) std::cout << k << ' ';
  std::cout << "): " << result.accuracy.to_string() << "\n";
  return 0;
}

int cmd_trace(const ArgMap& flags) {
  core::AutoPowerModel model;
  model.load_from_file(require_flag(flags, "model"));
  const auto config = require_flag(flags, "config");
  const auto wl = require_flag(flags, "workload");

  sim::PerfSimulator simulator;
  power::GoldenPowerModel golden;
  const auto trace = exp::build_trace(simulator, golden,
                                      arch::boom_config(config),
                                      workload::workload_by_name(wl));
  const auto predicted = model.predict_trace(trace.windows);
  const auto err = exp::trace_errors(trace.golden_total, predicted);

  std::cout << trace.windows.size() << " windows of " << trace.window_cycles
            << " cycles; max err " << util::fmt_pct(err.max_power_error, 1)
            << ", min err " << util::fmt_pct(err.min_power_error, 1)
            << ", avg err " << util::fmt_pct(err.average_error, 1) << "\n";

  if (const auto it = flags.find("csv"); it != flags.end()) {
    std::ofstream csv(it->second);
    AP_REQUIRE(csv.good(), "cannot open csv output: " + it->second);
    csv << "window,cycle,golden_mw,predicted_mw\n";
    double cycle = 0.0;
    for (std::size_t i = 0; i < predicted.size(); ++i) {
      csv << i << ',' << cycle << ',' << trace.golden_total[i] << ','
          << predicted[i] << '\n';
      cycle += trace.windows[i].events.cycles();
    }
    std::cout << "trace written to " << it->second << "\n";
  }
  return 0;
}

int usage() {
  std::cerr <<
      "usage: autopower <command> [flags]\n"
      "  list\n"
      "  train    --known C1,C15 --out model.ap\n"
      "  predict  --model model.ap --config C8 --workload dhrystone"
      " [--per-component]\n"
      "  evaluate --model model.ap --known C1,C15\n"
      "  trace    --model model.ap --config C3 --workload gemm"
      " [--csv out.csv]\n";
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  const std::string command = argv[1];
  try {
    const ArgMap flags = parse_flags(argc, argv, 2);
    if (command == "list") return cmd_list();
    if (command == "train") return cmd_train(flags);
    if (command == "predict") return cmd_predict(flags);
    if (command == "evaluate") return cmd_evaluate(flags);
    if (command == "trace") return cmd_trace(flags);
    std::cerr << "unknown command: " << command << "\n";
    return usage();
  } catch (const util::Error& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 1;
  }
}
