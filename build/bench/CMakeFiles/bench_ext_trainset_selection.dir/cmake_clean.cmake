file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_trainset_selection.dir/bench_ext_trainset_selection.cpp.o"
  "CMakeFiles/bench_ext_trainset_selection.dir/bench_ext_trainset_selection.cpp.o.d"
  "bench_ext_trainset_selection"
  "bench_ext_trainset_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_trainset_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
