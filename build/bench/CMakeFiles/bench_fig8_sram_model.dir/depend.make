# Empty dependencies file for bench_fig8_sram_model.
# This may be replaced when dependencies are built.
