file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_accuracy_3cfg.dir/bench_fig5_accuracy_3cfg.cpp.o"
  "CMakeFiles/bench_fig5_accuracy_3cfg.dir/bench_fig5_accuracy_3cfg.cpp.o.d"
  "bench_fig5_accuracy_3cfg"
  "bench_fig5_accuracy_3cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_accuracy_3cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
