# Empty dependencies file for bench_fig5_accuracy_3cfg.
# This may be replaced when dependencies are built.
