# Empty dependencies file for bench_fig1_power_groups.
# This may be replaced when dependencies are built.
