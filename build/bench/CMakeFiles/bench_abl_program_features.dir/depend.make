# Empty dependencies file for bench_abl_program_features.
# This may be replaced when dependencies are built.
