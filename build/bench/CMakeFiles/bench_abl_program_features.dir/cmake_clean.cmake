file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_program_features.dir/bench_abl_program_features.cpp.o"
  "CMakeFiles/bench_abl_program_features.dir/bench_abl_program_features.cpp.o.d"
  "bench_abl_program_features"
  "bench_abl_program_features.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_program_features.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
