file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_accuracy_2cfg.dir/bench_fig4_accuracy_2cfg.cpp.o"
  "CMakeFiles/bench_fig4_accuracy_2cfg.dir/bench_fig4_accuracy_2cfg.cpp.o.d"
  "bench_fig4_accuracy_2cfg"
  "bench_fig4_accuracy_2cfg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_accuracy_2cfg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
