# Empty dependencies file for bench_fig4_accuracy_2cfg.
# This may be replaced when dependencies are built.
