file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_panda.dir/bench_ext_panda.cpp.o"
  "CMakeFiles/bench_ext_panda.dir/bench_ext_panda.cpp.o.d"
  "bench_ext_panda"
  "bench_ext_panda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_panda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
