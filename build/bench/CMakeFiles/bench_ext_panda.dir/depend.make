# Empty dependencies file for bench_ext_panda.
# This may be replaced when dependencies are built.
