
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ext_panda.cpp" "bench/CMakeFiles/bench_ext_panda.dir/bench_ext_panda.cpp.o" "gcc" "bench/CMakeFiles/bench_ext_panda.dir/bench_ext_panda.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/autopower_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/autopower_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/autopower_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/autopower_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/autopower_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/autopower_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/autopower_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/techlib/CMakeFiles/autopower_techlib.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/autopower_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/autopower_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autopower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
