# Empty compiler generated dependencies file for bench_table4_power_trace.
# This may be replaced when dependencies are built.
