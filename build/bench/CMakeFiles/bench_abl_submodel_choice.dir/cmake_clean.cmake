file(REMOVE_RECURSE
  "CMakeFiles/bench_abl_submodel_choice.dir/bench_abl_submodel_choice.cpp.o"
  "CMakeFiles/bench_abl_submodel_choice.dir/bench_abl_submodel_choice.cpp.o.d"
  "bench_abl_submodel_choice"
  "bench_abl_submodel_choice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_abl_submodel_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
