# Empty compiler generated dependencies file for bench_abl_submodel_choice.
# This may be replaced when dependencies are built.
