file(REMOVE_RECURSE
  "CMakeFiles/autopower_exp.dir/accuracy.cpp.o"
  "CMakeFiles/autopower_exp.dir/accuracy.cpp.o.d"
  "CMakeFiles/autopower_exp.dir/dataset.cpp.o"
  "CMakeFiles/autopower_exp.dir/dataset.cpp.o.d"
  "CMakeFiles/autopower_exp.dir/harness.cpp.o"
  "CMakeFiles/autopower_exp.dir/harness.cpp.o.d"
  "CMakeFiles/autopower_exp.dir/trace.cpp.o"
  "CMakeFiles/autopower_exp.dir/trace.cpp.o.d"
  "libautopower_exp.a"
  "libautopower_exp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopower_exp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
