file(REMOVE_RECURSE
  "libautopower_exp.a"
)
