# Empty compiler generated dependencies file for autopower_exp.
# This may be replaced when dependencies are built.
