file(REMOVE_RECURSE
  "libautopower_techlib.a"
)
