file(REMOVE_RECURSE
  "CMakeFiles/autopower_techlib.dir/sram_macro.cpp.o"
  "CMakeFiles/autopower_techlib.dir/sram_macro.cpp.o.d"
  "CMakeFiles/autopower_techlib.dir/techlib.cpp.o"
  "CMakeFiles/autopower_techlib.dir/techlib.cpp.o.d"
  "libautopower_techlib.a"
  "libautopower_techlib.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopower_techlib.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
