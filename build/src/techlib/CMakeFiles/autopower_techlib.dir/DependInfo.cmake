
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/techlib/sram_macro.cpp" "src/techlib/CMakeFiles/autopower_techlib.dir/sram_macro.cpp.o" "gcc" "src/techlib/CMakeFiles/autopower_techlib.dir/sram_macro.cpp.o.d"
  "/root/repo/src/techlib/techlib.cpp" "src/techlib/CMakeFiles/autopower_techlib.dir/techlib.cpp.o" "gcc" "src/techlib/CMakeFiles/autopower_techlib.dir/techlib.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/autopower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
