# Empty dependencies file for autopower_techlib.
# This may be replaced when dependencies are built.
