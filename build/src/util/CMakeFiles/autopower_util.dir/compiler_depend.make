# Empty compiler generated dependencies file for autopower_util.
# This may be replaced when dependencies are built.
