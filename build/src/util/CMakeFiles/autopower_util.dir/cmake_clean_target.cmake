file(REMOVE_RECURSE
  "libautopower_util.a"
)
