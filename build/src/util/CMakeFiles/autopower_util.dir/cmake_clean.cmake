file(REMOVE_RECURSE
  "CMakeFiles/autopower_util.dir/archive.cpp.o"
  "CMakeFiles/autopower_util.dir/archive.cpp.o.d"
  "CMakeFiles/autopower_util.dir/rng.cpp.o"
  "CMakeFiles/autopower_util.dir/rng.cpp.o.d"
  "CMakeFiles/autopower_util.dir/table.cpp.o"
  "CMakeFiles/autopower_util.dir/table.cpp.o.d"
  "libautopower_util.a"
  "libautopower_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopower_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
