file(REMOVE_RECURSE
  "CMakeFiles/autopower_arch.dir/component.cpp.o"
  "CMakeFiles/autopower_arch.dir/component.cpp.o.d"
  "CMakeFiles/autopower_arch.dir/events.cpp.o"
  "CMakeFiles/autopower_arch.dir/events.cpp.o.d"
  "CMakeFiles/autopower_arch.dir/params.cpp.o"
  "CMakeFiles/autopower_arch.dir/params.cpp.o.d"
  "libautopower_arch.a"
  "libautopower_arch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopower_arch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
