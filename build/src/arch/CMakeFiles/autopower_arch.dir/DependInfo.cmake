
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/component.cpp" "src/arch/CMakeFiles/autopower_arch.dir/component.cpp.o" "gcc" "src/arch/CMakeFiles/autopower_arch.dir/component.cpp.o.d"
  "/root/repo/src/arch/events.cpp" "src/arch/CMakeFiles/autopower_arch.dir/events.cpp.o" "gcc" "src/arch/CMakeFiles/autopower_arch.dir/events.cpp.o.d"
  "/root/repo/src/arch/params.cpp" "src/arch/CMakeFiles/autopower_arch.dir/params.cpp.o" "gcc" "src/arch/CMakeFiles/autopower_arch.dir/params.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/autopower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
