# Empty dependencies file for autopower_arch.
# This may be replaced when dependencies are built.
