file(REMOVE_RECURSE
  "libautopower_arch.a"
)
