# Empty compiler generated dependencies file for autopower_ml.
# This may be replaced when dependencies are built.
