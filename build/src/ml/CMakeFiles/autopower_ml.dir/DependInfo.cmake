
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/dataset.cpp" "src/ml/CMakeFiles/autopower_ml.dir/dataset.cpp.o" "gcc" "src/ml/CMakeFiles/autopower_ml.dir/dataset.cpp.o.d"
  "/root/repo/src/ml/gbt.cpp" "src/ml/CMakeFiles/autopower_ml.dir/gbt.cpp.o" "gcc" "src/ml/CMakeFiles/autopower_ml.dir/gbt.cpp.o.d"
  "/root/repo/src/ml/linear.cpp" "src/ml/CMakeFiles/autopower_ml.dir/linear.cpp.o" "gcc" "src/ml/CMakeFiles/autopower_ml.dir/linear.cpp.o.d"
  "/root/repo/src/ml/matrix.cpp" "src/ml/CMakeFiles/autopower_ml.dir/matrix.cpp.o" "gcc" "src/ml/CMakeFiles/autopower_ml.dir/matrix.cpp.o.d"
  "/root/repo/src/ml/metrics.cpp" "src/ml/CMakeFiles/autopower_ml.dir/metrics.cpp.o" "gcc" "src/ml/CMakeFiles/autopower_ml.dir/metrics.cpp.o.d"
  "/root/repo/src/ml/tree.cpp" "src/ml/CMakeFiles/autopower_ml.dir/tree.cpp.o" "gcc" "src/ml/CMakeFiles/autopower_ml.dir/tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/autopower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
