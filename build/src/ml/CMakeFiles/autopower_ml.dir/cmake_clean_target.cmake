file(REMOVE_RECURSE
  "libautopower_ml.a"
)
