file(REMOVE_RECURSE
  "CMakeFiles/autopower_ml.dir/dataset.cpp.o"
  "CMakeFiles/autopower_ml.dir/dataset.cpp.o.d"
  "CMakeFiles/autopower_ml.dir/gbt.cpp.o"
  "CMakeFiles/autopower_ml.dir/gbt.cpp.o.d"
  "CMakeFiles/autopower_ml.dir/linear.cpp.o"
  "CMakeFiles/autopower_ml.dir/linear.cpp.o.d"
  "CMakeFiles/autopower_ml.dir/matrix.cpp.o"
  "CMakeFiles/autopower_ml.dir/matrix.cpp.o.d"
  "CMakeFiles/autopower_ml.dir/metrics.cpp.o"
  "CMakeFiles/autopower_ml.dir/metrics.cpp.o.d"
  "CMakeFiles/autopower_ml.dir/tree.cpp.o"
  "CMakeFiles/autopower_ml.dir/tree.cpp.o.d"
  "libautopower_ml.a"
  "libautopower_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopower_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
