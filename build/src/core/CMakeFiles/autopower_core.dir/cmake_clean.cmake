file(REMOVE_RECURSE
  "CMakeFiles/autopower_core.dir/autopower.cpp.o"
  "CMakeFiles/autopower_core.dir/autopower.cpp.o.d"
  "CMakeFiles/autopower_core.dir/clock_model.cpp.o"
  "CMakeFiles/autopower_core.dir/clock_model.cpp.o.d"
  "CMakeFiles/autopower_core.dir/features.cpp.o"
  "CMakeFiles/autopower_core.dir/features.cpp.o.d"
  "CMakeFiles/autopower_core.dir/logic_model.cpp.o"
  "CMakeFiles/autopower_core.dir/logic_model.cpp.o.d"
  "CMakeFiles/autopower_core.dir/scaling_model.cpp.o"
  "CMakeFiles/autopower_core.dir/scaling_model.cpp.o.d"
  "CMakeFiles/autopower_core.dir/sram_model.cpp.o"
  "CMakeFiles/autopower_core.dir/sram_model.cpp.o.d"
  "libautopower_core.a"
  "libautopower_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopower_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
