
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/autopower.cpp" "src/core/CMakeFiles/autopower_core.dir/autopower.cpp.o" "gcc" "src/core/CMakeFiles/autopower_core.dir/autopower.cpp.o.d"
  "/root/repo/src/core/clock_model.cpp" "src/core/CMakeFiles/autopower_core.dir/clock_model.cpp.o" "gcc" "src/core/CMakeFiles/autopower_core.dir/clock_model.cpp.o.d"
  "/root/repo/src/core/features.cpp" "src/core/CMakeFiles/autopower_core.dir/features.cpp.o" "gcc" "src/core/CMakeFiles/autopower_core.dir/features.cpp.o.d"
  "/root/repo/src/core/logic_model.cpp" "src/core/CMakeFiles/autopower_core.dir/logic_model.cpp.o" "gcc" "src/core/CMakeFiles/autopower_core.dir/logic_model.cpp.o.d"
  "/root/repo/src/core/scaling_model.cpp" "src/core/CMakeFiles/autopower_core.dir/scaling_model.cpp.o" "gcc" "src/core/CMakeFiles/autopower_core.dir/scaling_model.cpp.o.d"
  "/root/repo/src/core/sram_model.cpp" "src/core/CMakeFiles/autopower_core.dir/sram_model.cpp.o" "gcc" "src/core/CMakeFiles/autopower_core.dir/sram_model.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/autopower_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/autopower_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/autopower_power.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/autopower_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/techlib/CMakeFiles/autopower_techlib.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autopower_util.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/autopower_netlist.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
