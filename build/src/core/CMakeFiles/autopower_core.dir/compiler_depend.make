# Empty compiler generated dependencies file for autopower_core.
# This may be replaced when dependencies are built.
