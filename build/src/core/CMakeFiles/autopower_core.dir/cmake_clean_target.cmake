file(REMOVE_RECURSE
  "libautopower_core.a"
)
