# Empty dependencies file for autopower_power.
# This may be replaced when dependencies are built.
