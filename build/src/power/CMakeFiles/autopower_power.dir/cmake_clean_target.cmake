file(REMOVE_RECURSE
  "libautopower_power.a"
)
