file(REMOVE_RECURSE
  "CMakeFiles/autopower_power.dir/activity.cpp.o"
  "CMakeFiles/autopower_power.dir/activity.cpp.o.d"
  "CMakeFiles/autopower_power.dir/golden.cpp.o"
  "CMakeFiles/autopower_power.dir/golden.cpp.o.d"
  "libautopower_power.a"
  "libautopower_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopower_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
