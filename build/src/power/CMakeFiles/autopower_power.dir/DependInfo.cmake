
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/activity.cpp" "src/power/CMakeFiles/autopower_power.dir/activity.cpp.o" "gcc" "src/power/CMakeFiles/autopower_power.dir/activity.cpp.o.d"
  "/root/repo/src/power/golden.cpp" "src/power/CMakeFiles/autopower_power.dir/golden.cpp.o" "gcc" "src/power/CMakeFiles/autopower_power.dir/golden.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/autopower_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/autopower_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/techlib/CMakeFiles/autopower_techlib.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autopower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
