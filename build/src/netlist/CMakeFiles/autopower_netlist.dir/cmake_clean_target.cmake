file(REMOVE_RECURSE
  "libautopower_netlist.a"
)
