# Empty dependencies file for autopower_netlist.
# This may be replaced when dependencies are built.
