file(REMOVE_RECURSE
  "CMakeFiles/autopower_netlist.dir/synthesis.cpp.o"
  "CMakeFiles/autopower_netlist.dir/synthesis.cpp.o.d"
  "libautopower_netlist.a"
  "libautopower_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopower_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
