# Empty compiler generated dependencies file for autopower_baselines.
# This may be replaced when dependencies are built.
