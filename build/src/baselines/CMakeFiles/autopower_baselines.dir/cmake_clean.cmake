file(REMOVE_RECURSE
  "CMakeFiles/autopower_baselines.dir/autopower_minus.cpp.o"
  "CMakeFiles/autopower_baselines.dir/autopower_minus.cpp.o.d"
  "CMakeFiles/autopower_baselines.dir/mcpat.cpp.o"
  "CMakeFiles/autopower_baselines.dir/mcpat.cpp.o.d"
  "CMakeFiles/autopower_baselines.dir/mcpat_calib.cpp.o"
  "CMakeFiles/autopower_baselines.dir/mcpat_calib.cpp.o.d"
  "CMakeFiles/autopower_baselines.dir/panda.cpp.o"
  "CMakeFiles/autopower_baselines.dir/panda.cpp.o.d"
  "libautopower_baselines.a"
  "libautopower_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopower_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
