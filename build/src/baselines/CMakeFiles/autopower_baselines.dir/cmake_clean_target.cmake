file(REMOVE_RECURSE
  "libautopower_baselines.a"
)
