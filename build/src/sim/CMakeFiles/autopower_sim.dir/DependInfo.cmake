
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/branch.cpp" "src/sim/CMakeFiles/autopower_sim.dir/branch.cpp.o" "gcc" "src/sim/CMakeFiles/autopower_sim.dir/branch.cpp.o.d"
  "/root/repo/src/sim/cache.cpp" "src/sim/CMakeFiles/autopower_sim.dir/cache.cpp.o" "gcc" "src/sim/CMakeFiles/autopower_sim.dir/cache.cpp.o.d"
  "/root/repo/src/sim/perfsim.cpp" "src/sim/CMakeFiles/autopower_sim.dir/perfsim.cpp.o" "gcc" "src/sim/CMakeFiles/autopower_sim.dir/perfsim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/arch/CMakeFiles/autopower_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/autopower_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autopower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
