file(REMOVE_RECURSE
  "libautopower_sim.a"
)
