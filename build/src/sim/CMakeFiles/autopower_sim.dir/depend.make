# Empty dependencies file for autopower_sim.
# This may be replaced when dependencies are built.
