file(REMOVE_RECURSE
  "CMakeFiles/autopower_sim.dir/branch.cpp.o"
  "CMakeFiles/autopower_sim.dir/branch.cpp.o.d"
  "CMakeFiles/autopower_sim.dir/cache.cpp.o"
  "CMakeFiles/autopower_sim.dir/cache.cpp.o.d"
  "CMakeFiles/autopower_sim.dir/perfsim.cpp.o"
  "CMakeFiles/autopower_sim.dir/perfsim.cpp.o.d"
  "libautopower_sim.a"
  "libautopower_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopower_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
