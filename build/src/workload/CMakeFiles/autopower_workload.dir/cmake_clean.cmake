file(REMOVE_RECURSE
  "CMakeFiles/autopower_workload.dir/workload.cpp.o"
  "CMakeFiles/autopower_workload.dir/workload.cpp.o.d"
  "libautopower_workload.a"
  "libautopower_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopower_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
