file(REMOVE_RECURSE
  "libautopower_workload.a"
)
