# Empty dependencies file for autopower_workload.
# This may be replaced when dependencies are built.
