file(REMOVE_RECURSE
  "CMakeFiles/autopower_cli.dir/autopower_cli.cpp.o"
  "CMakeFiles/autopower_cli.dir/autopower_cli.cpp.o.d"
  "autopower"
  "autopower.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autopower_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
