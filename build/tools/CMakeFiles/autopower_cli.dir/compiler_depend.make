# Empty compiler generated dependencies file for autopower_cli.
# This may be replaced when dependencies are built.
