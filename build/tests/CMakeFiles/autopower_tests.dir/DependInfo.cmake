
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_arch.cpp" "tests/CMakeFiles/autopower_tests.dir/test_arch.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_arch.cpp.o.d"
  "/root/repo/tests/test_archive.cpp" "tests/CMakeFiles/autopower_tests.dir/test_archive.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_archive.cpp.o.d"
  "/root/repo/tests/test_baselines.cpp" "tests/CMakeFiles/autopower_tests.dir/test_baselines.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_baselines.cpp.o.d"
  "/root/repo/tests/test_core_autopower.cpp" "tests/CMakeFiles/autopower_tests.dir/test_core_autopower.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_core_autopower.cpp.o.d"
  "/root/repo/tests/test_core_models.cpp" "tests/CMakeFiles/autopower_tests.dir/test_core_models.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_core_models.cpp.o.d"
  "/root/repo/tests/test_core_scaling.cpp" "tests/CMakeFiles/autopower_tests.dir/test_core_scaling.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_core_scaling.cpp.o.d"
  "/root/repo/tests/test_edge_cases.cpp" "tests/CMakeFiles/autopower_tests.dir/test_edge_cases.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_edge_cases.cpp.o.d"
  "/root/repo/tests/test_exp.cpp" "tests/CMakeFiles/autopower_tests.dir/test_exp.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_exp.cpp.o.d"
  "/root/repo/tests/test_integration_properties.cpp" "tests/CMakeFiles/autopower_tests.dir/test_integration_properties.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_integration_properties.cpp.o.d"
  "/root/repo/tests/test_ml_gbt.cpp" "tests/CMakeFiles/autopower_tests.dir/test_ml_gbt.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_ml_gbt.cpp.o.d"
  "/root/repo/tests/test_ml_linear.cpp" "tests/CMakeFiles/autopower_tests.dir/test_ml_linear.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_ml_linear.cpp.o.d"
  "/root/repo/tests/test_ml_matrix.cpp" "tests/CMakeFiles/autopower_tests.dir/test_ml_matrix.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_ml_matrix.cpp.o.d"
  "/root/repo/tests/test_ml_metrics.cpp" "tests/CMakeFiles/autopower_tests.dir/test_ml_metrics.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_ml_metrics.cpp.o.d"
  "/root/repo/tests/test_model_persistence.cpp" "tests/CMakeFiles/autopower_tests.dir/test_model_persistence.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_model_persistence.cpp.o.d"
  "/root/repo/tests/test_netlist.cpp" "tests/CMakeFiles/autopower_tests.dir/test_netlist.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_netlist.cpp.o.d"
  "/root/repo/tests/test_power_activity.cpp" "tests/CMakeFiles/autopower_tests.dir/test_power_activity.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_power_activity.cpp.o.d"
  "/root/repo/tests/test_power_golden.cpp" "tests/CMakeFiles/autopower_tests.dir/test_power_golden.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_power_golden.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/autopower_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_sim_branch.cpp" "tests/CMakeFiles/autopower_tests.dir/test_sim_branch.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_sim_branch.cpp.o.d"
  "/root/repo/tests/test_sim_cache.cpp" "tests/CMakeFiles/autopower_tests.dir/test_sim_cache.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_sim_cache.cpp.o.d"
  "/root/repo/tests/test_sim_perfsim.cpp" "tests/CMakeFiles/autopower_tests.dir/test_sim_perfsim.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_sim_perfsim.cpp.o.d"
  "/root/repo/tests/test_techlib.cpp" "tests/CMakeFiles/autopower_tests.dir/test_techlib.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_techlib.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/autopower_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_workload.cpp" "tests/CMakeFiles/autopower_tests.dir/test_workload.cpp.o" "gcc" "tests/CMakeFiles/autopower_tests.dir/test_workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/exp/CMakeFiles/autopower_exp.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/autopower_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/autopower_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/autopower_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/autopower_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/autopower_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/autopower_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/techlib/CMakeFiles/autopower_techlib.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/autopower_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/arch/CMakeFiles/autopower_arch.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/autopower_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
