# Empty dependencies file for autopower_tests.
# This may be replaced when dependencies are built.
