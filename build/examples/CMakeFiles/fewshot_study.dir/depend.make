# Empty dependencies file for fewshot_study.
# This may be replaced when dependencies are built.
