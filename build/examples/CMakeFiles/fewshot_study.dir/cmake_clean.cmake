file(REMOVE_RECURSE
  "CMakeFiles/fewshot_study.dir/fewshot_study.cpp.o"
  "CMakeFiles/fewshot_study.dir/fewshot_study.cpp.o.d"
  "fewshot_study"
  "fewshot_study.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fewshot_study.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
