# Empty compiler generated dependencies file for power_trace_gemm.
# This may be replaced when dependencies are built.
