file(REMOVE_RECURSE
  "CMakeFiles/power_trace_gemm.dir/power_trace_gemm.cpp.o"
  "CMakeFiles/power_trace_gemm.dir/power_trace_gemm.cpp.o.d"
  "power_trace_gemm"
  "power_trace_gemm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/power_trace_gemm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
