// Metrics overhead: the util::MetricsRegistry instrumentation must be
// effectively free.  The same 200-request batch-serving run (the hottest
// instrumented path: per-request ScopedTimer, queue-wait observation,
// memo counters, structural-lane export) is timed with the registry's
// process-wide switch off and on, best-of-N each way, on fresh engines so
// both modes do identical cold-cache work.
//
// The bench FAILS (exit 1) if the enabled run is more than 5% slower than
// the disabled baseline, or if any enabled-run response is not
// bit-identical to the disabled baseline — instrumentation may cost
// nanoseconds, never correctness.  `--json <path>` writes the headline
// numbers for tools/check.sh to collect.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "power/golden.hpp"
#include "serve/engine.hpp"
#include "sim/perfsim.hpp"
#include "util/metrics.hpp"

using namespace autopower;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// One cold-cache engine run; returns elapsed seconds and the responses.
double run_batch(const std::shared_ptr<core::AutoPowerModel>& model,
                 const std::vector<serve::BatchRequest>& requests,
                 std::vector<serve::BatchResponse>& responses) {
  serve::BatchEngine engine(model, {.threads = 4});
  const auto start = std::chrono::steady_clock::now();
  responses = engine.run(requests);
  return seconds_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }

  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(sim, golden);
  const auto known = exp::ExperimentData::training_configs(2);
  auto model = std::make_shared<core::AutoPowerModel>();
  model->train(data.contexts_of(known), golden);

  const std::vector<std::string> configs = {"C2", "C3", "C4",  "C6",  "C7",
                                            "C9", "C11", "C12", "C13", "C14"};
  const std::vector<std::string> workloads = {"dhrystone", "qsort", "towers",
                                              "spmv"};
  constexpr std::size_t kRequests = 200;
  std::vector<serve::BatchRequest> requests;
  requests.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    requests.push_back({configs[i % configs.size()],
                        workloads[(i / configs.size()) % workloads.size()],
                        serve::PredictMode::kTotal});
  }

  // Warm-up run (enabled) so lazy instrument registration, thread-pool
  // startup, and workload tables are paid before either timed mode.
  std::vector<serve::BatchResponse> scratch;
  run_batch(model, requests, scratch);

  constexpr int kReps = 5;
  std::vector<serve::BatchResponse> baseline;
  std::vector<serve::BatchResponse> instrumented;

  util::MetricsRegistry::set_enabled(false);
  double off_s = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    std::vector<serve::BatchResponse> responses;
    const double s = run_batch(model, requests, responses);
    if (s < off_s) off_s = s;
    if (rep == 0) baseline = std::move(responses);
  }

  util::MetricsRegistry::set_enabled(true);
  double on_s = 1e300;
  for (int rep = 0; rep < kReps; ++rep) {
    std::vector<serve::BatchResponse> responses;
    const double s = run_batch(model, requests, responses);
    if (s < on_s) on_s = s;
    if (rep == 0) instrumented = std::move(responses);
  }

  bool identical = baseline.size() == instrumented.size();
  for (std::size_t i = 0; identical && i < baseline.size(); ++i) {
    identical = baseline[i].ok && instrumented[i].ok &&
                baseline[i].total_mw == instrumented[i].total_mw;
  }

  const double overhead_pct = (on_s / off_s - 1.0) * 100.0;
  std::printf("metrics off (best of %d) : %7.1f req/s  (%.4f s)\n", kReps,
              kRequests / off_s, off_s);
  std::printf("metrics on  (best of %d) : %7.1f req/s  (%.4f s)\n", kReps,
              kRequests / on_s, on_s);
  std::printf("overhead                 : %+.2f%% (bar: 5.00%%)\n",
              overhead_pct);
  std::printf("bit-identical responses  : %s\n", identical ? "yes" : "NO");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\n"
                   "  \"off_req_per_s\": %.1f,\n"
                   "  \"on_req_per_s\": %.1f,\n"
                   "  \"overhead_pct\": %.3f,\n"
                   "  \"bit_identical\": %s\n"
                   "}\n",
                   kRequests / off_s, kRequests / on_s, overhead_pct,
                   identical ? "true" : "false");
      std::fclose(f);
    }
  }
  if (!identical) {
    std::printf("FAIL: instrumentation changed the responses\n");
    return 1;
  }
  if (overhead_pct > 5.0) {
    std::printf("FAIL: above the 5%% overhead bar\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
