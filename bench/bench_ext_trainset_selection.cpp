// Extension benchmark: which two configurations should be synthesized?
//
// The paper trains on spread corners (its Table I example uses C1 and
// C15).  Each golden configuration costs a full VLSI-flow run, so the
// *choice* of the two known configurations is a real engineering decision.
// This bench trains AutoPower on different 2-configuration selections and
// shows why the spread corners win: structural ridge models interpolate
// between the corners but must extrapolate beyond a clustered pair.

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/autopower.hpp"
#include "exp/harness.hpp"
#include "util/table.hpp"

using namespace autopower;

int main() {
  std::puts("=== Extension: training-set selection at k=2 ===\n");

  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(sim, golden);

  const std::vector<std::vector<std::string>> selections = {
      {"C1", "C15"},  // spread corners (the paper's choice)
      {"C4", "C11"},  // moderately spread interior
      {"C1", "C2"},   // clustered at the small end
      {"C14", "C15"}, // clustered at the large end
      {"C7", "C8"},   // clustered mid-range
  };

  util::TablePrinter table(
      {"Training pair", "Span", "MAPE", "R2", "Worst-case APE"});
  for (const auto& selection : selections) {
    core::AutoPowerModel model;
    model.train(data.contexts_of(selection), golden);
    const auto result = exp::evaluate_predictor(
        data, selection, "AutoPower",
        [&](const core::EvalContext& c) { return model.predict_total(c); });

    double worst = 0.0;
    for (std::size_t i = 0; i < result.actual.size(); ++i) {
      worst = std::max(worst, 100.0 *
                                  std::abs(result.predicted[i] -
                                           result.actual[i]) /
                                  result.actual[i]);
    }
    const bool spread = selection[0] == "C1" && selection[1] == "C15";
    table.add_row({selection[0] + "+" + selection[1],
                   spread          ? "corners"
                   : selection[0] == "C4" ? "interior"
                                          : "clustered",
                   util::fmt_pct(result.accuracy.mape),
                   util::fmt(result.accuracy.r2), util::fmt_pct(worst, 1)});
  }
  table.print(std::cout);
  std::puts(
      "\nClustered pairs force the structural ridge models to extrapolate "
      "far outside their training span; the spread corners make every "
      "other configuration an interpolation. Synthesize the corners.");
  return 0;
}
