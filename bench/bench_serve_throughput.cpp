// Batch serving throughput: requests/sec of the serve::BatchEngine at 1,
// 4, and hardware_concurrency threads on a 200-request design-space-
// exploration sweep, against the serial predict path it replaces.
//
// The serial baseline is the status-quo per-query path (what `autopower
// predict` does for every invocation): build the evaluation context from
// scratch — including a cold PerfSimulator::simulate — then predict.  The
// engine attacks that cost on three axes: the response memo answers exact
// repeat queries outright, the sharded eval cache deduplicates the
// deterministic (config, workload) simulations, and the thread pool runs
// the residual work concurrently.  On a single-core host the speedup is
// the caches'; on a multi-core host the thread counts separate further.
//
// A second stage measures the daemon wire path end to end: a real
// serve::Daemon on a loopback TCP socket, the same 200 requests sent as
// JSONL.  A closed-loop pass (one request outstanding) yields p50/p99
// round-trip latency; a pipelined pass (all requests streamed, then all
// responses read) yields daemon req/s.  Both passes must return lines
// byte-identical to `serve::response_to_jsonl` over a fresh engine run —
// the same bit-identity `autopower batch` guarantees.
//
// The bench FAILS (exit 1) if any parallel run is not bit-identical to
// the serial baseline, if the 4-thread engine is below the 2.5x
// speedup bar over the serial baseline, or if a daemon response line
// diverges.  `--json <path>` additionally writes the headline numbers
// for tools/check.sh to collect.

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "power/golden.hpp"
#include "serve/daemon.hpp"
#include "serve/engine.hpp"
#include "serve/jsonl.hpp"
#include "serve/net.hpp"
#include "sim/perfsim.hpp"
#include "workload/workload.hpp"

using namespace autopower;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

core::EvalContext make_context(const sim::PerfSimulator& sim,
                               const std::string& config,
                               const std::string& workload) {
  core::EvalContext ctx;
  ctx.cfg = &arch::boom_config(config);
  ctx.workload = workload;
  const auto& profile = workload::workload_by_name(workload);
  ctx.program = workload::program_features(profile);
  ctx.events = sim.simulate(*ctx.cfg, profile);
  return ctx;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  // Train the model exactly like the paper's 2-configuration experiment.
  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(sim, golden);
  const auto known = exp::ExperimentData::training_configs(2);
  auto model = std::make_shared<core::AutoPowerModel>();
  model->train(data.contexts_of(known), golden);

  // A 200-request DSE sweep: an optimiser revisiting a 10-config x
  // 4-workload neighbourhood, so (config, workload) pairs repeat — the
  // realistic shape batch serving exists for.
  const std::vector<std::string> configs = {"C2", "C3", "C4",  "C6",  "C7",
                                            "C9", "C11", "C12", "C13", "C14"};
  const std::vector<std::string> workloads = {"dhrystone", "qsort", "towers",
                                              "spmv"};
  constexpr std::size_t kRequests = 200;
  std::vector<serve::BatchRequest> requests;
  requests.reserve(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    requests.push_back({configs[i % configs.size()],
                        workloads[(i / configs.size()) % workloads.size()],
                        serve::PredictMode::kTotal});
  }

  // Serial baseline: fresh context (cold simulate) per request, exactly
  // the per-query cost of the pre-batching predict path.
  std::vector<double> serial(kRequests);
  const auto serial_start = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kRequests; ++i) {
    sim::PerfSimulator per_query_sim;
    serial[i] = model->predict_total(
        make_context(per_query_sim, requests[i].config,
                     requests[i].workload));
  }
  const double serial_s = seconds_since(serial_start);
  std::printf("serial predict loop      : %7.1f req/s  (%.3f s)\n",
              kRequests / serial_s, serial_s);

  const std::size_t hw = std::max(1u, std::thread::hardware_concurrency());
  std::vector<std::size_t> thread_counts = {1, 4};
  if (hw != 1 && hw != 4) thread_counts.push_back(hw);
  bool identical = true;
  double speedup_at_4 = 0.0;
  for (const std::size_t threads : thread_counts) {
    // Fresh engine per run: every timing starts from a cold cache.
    serve::BatchEngine engine(model, {.threads = threads});
    const auto start = std::chrono::steady_clock::now();
    const auto responses = engine.run(requests);
    const double elapsed = seconds_since(start);
    const double speedup = serial_s / elapsed;
    if (threads == 4) speedup_at_4 = speedup;

    for (std::size_t i = 0; i < kRequests; ++i) {
      if (!responses[i].ok || responses[i].total_mw != serial[i]) {
        identical = false;
      }
    }
    const auto sim_stats = engine.cache().stats();
    const auto resp_stats = engine.response_stats();
    std::printf(
        "engine @ %2zu thread%s      : %7.1f req/s  (%.3f s, %.2fx vs "
        "serial; memo %llu/%llu, sim cache %llu/%llu hit/miss)\n",
        threads, threads == 1 ? " " : "s", kRequests / elapsed, elapsed,
        speedup, static_cast<unsigned long long>(resp_stats.hits),
        static_cast<unsigned long long>(resp_stats.misses),
        static_cast<unsigned long long>(sim_stats.hits),
        static_cast<unsigned long long>(sim_stats.misses));
  }

  std::printf("bit-identical to serial  : %s\n", identical ? "yes" : "NO");
  std::printf("speedup @ 4 threads      : %.2fx (bar: 2.50x)\n", speedup_at_4);

  // Daemon wire path: real TCP loopback through a resident daemon.  The
  // expected response lines come from a fresh engine run — the daemon's
  // per-connection index is the request ordinal, so the lines must match
  // serve::response_to_jsonl byte for byte.
  std::vector<std::string> expected_lines(kRequests);
  {
    serve::BatchEngine oracle(model, {.threads = 4});
    const auto responses = oracle.run(requests);
    for (std::size_t i = 0; i < kRequests; ++i) {
      expected_lines[i] = serve::response_to_jsonl(responses[i]);
    }
  }
  std::vector<std::string> request_lines(kRequests);
  for (std::size_t i = 0; i < kRequests; ++i) {
    request_lines[i] = "{\"config\": \"" + requests[i].config +
                       "\", \"workload\": \"" + requests[i].workload + "\"}";
  }

  serve::DaemonOptions daemon_options;
  daemon_options.engine.threads = 4;
  serve::Daemon daemon(model, daemon_options);
  std::thread server([&daemon] { daemon.serve(); });
  const std::uint16_t port = daemon.port();

  bool daemon_identical = true;
  // Closed-loop pass: one request outstanding per round trip, so each
  // sample is a full wire latency (parse + admit + dispatch + deliver).
  std::vector<double> latency_us;
  latency_us.reserve(kRequests);
  {
    auto sock = serve::net::connect_loopback(port);
    serve::net::LineReader reader(sock.fd());
    std::string line;
    for (std::size_t i = 0; i < kRequests; ++i) {
      const auto t0 = std::chrono::steady_clock::now();
      serve::net::write_line(sock.fd(), request_lines[i]);
      if (!reader.next_line(line)) {
        daemon_identical = false;
        break;
      }
      latency_us.push_back(seconds_since(t0) * 1e6);
      if (line != expected_lines[i]) daemon_identical = false;
    }
  }
  std::sort(latency_us.begin(), latency_us.end());
  const auto percentile = [&latency_us](double p) {
    if (latency_us.empty()) return 0.0;
    const std::size_t rank = static_cast<std::size_t>(
        p * static_cast<double>(latency_us.size() - 1));
    return latency_us[rank];
  };
  const double p50_us = percentile(0.50);
  const double p99_us = percentile(0.99);

  // Pipelined pass on a fresh connection: stream every request, then
  // read every response — the daemon coalesces them into shared batches.
  double daemon_req_per_s = 0.0;
  {
    auto sock = serve::net::connect_loopback(port);
    const auto start = std::chrono::steady_clock::now();
    for (const auto& line : request_lines) {
      serve::net::write_line(sock.fd(), line);
    }
    sock.shutdown_write();
    serve::net::LineReader reader(sock.fd());
    std::string line;
    for (std::size_t i = 0; i < kRequests; ++i) {
      if (!reader.next_line(line) || line != expected_lines[i]) {
        daemon_identical = false;
        break;
      }
    }
    daemon_req_per_s = kRequests / seconds_since(start);
  }
  daemon.notify_stop();
  server.join();

  std::printf("daemon pipelined         : %7.1f req/s\n", daemon_req_per_s);
  std::printf("daemon closed-loop p50   : %7.1f us\n", p50_us);
  std::printf("daemon closed-loop p99   : %7.1f us\n", p99_us);
  std::printf("daemon bit-identical     : %s\n",
              daemon_identical ? "yes" : "NO");

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(f,
                   "{\n"
                   "  \"serial_req_per_s\": %.1f,\n"
                   "  \"engine_4thread_speedup\": %.3f,\n"
                   "  \"bit_identical\": %s,\n"
                   "  \"daemon_req_per_s\": %.1f,\n"
                   "  \"daemon_p50_us\": %.1f,\n"
                   "  \"daemon_p99_us\": %.1f,\n"
                   "  \"daemon_bit_identical\": %s\n"
                   "}\n",
                   kRequests / serial_s, speedup_at_4,
                   identical ? "true" : "false", daemon_req_per_s, p50_us,
                   p99_us, daemon_identical ? "true" : "false");
      std::fclose(f);
    }
  }
  if (!identical) {
    std::printf("FAIL: parallel results diverged from the serial baseline\n");
    return 1;
  }
  if (speedup_at_4 < 2.5) {
    std::printf("FAIL: below the 2.5x speedup bar\n");
    return 1;
  }
  if (!daemon_identical) {
    std::printf("FAIL: daemon responses diverged from the engine oracle\n");
    return 1;
  }
  std::printf("PASS\n");
  return 0;
}
