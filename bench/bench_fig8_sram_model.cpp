// Reproduces paper Fig. 8: per-component SRAM-power accuracy — AutoPower's
// hierarchy model (scaling-pattern hardware model + activity model +
// macro-level mapping) against AutoPower−'s direct ML regression.
//
// Also reports the Sec. III-B4 claims: aggregate SRAM accuracy
// (paper: MAPE 7.60%, R 0.94 at k=2) and the ~0 MAPE of the SRAM Block
// hardware model on held-out configurations.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "baselines/autopower_minus.hpp"
#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "ml/metrics.hpp"
#include "util/table.hpp"

using namespace autopower;

int main() {
  std::puts("=== Fig. 8: SRAM power, AutoPower vs AutoPower- (k=2) ===\n");

  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(sim, golden);
  const auto train_configs = exp::ExperimentData::training_configs(2);
  const auto train_ctx = data.contexts_of(train_configs);

  core::AutoPowerModel autopower;
  autopower.train(train_ctx, golden);
  baselines::AutoPowerMinus minus;
  minus.train(train_ctx, golden);

  const auto eval = data.samples_excluding(train_configs);

  util::TablePrinter table({"Component", "AutoPower MAPE", "AutoPower- MAPE",
                            "AutoPower R", "AutoPower- R", "Winner"});
  int wins = 0;
  int sram_components = 0;
  std::vector<double> all_actual;
  std::vector<double> all_pred;
  for (arch::ComponentKind c : arch::all_components()) {
    if (autopower.sram_model(c).position_names().empty()) continue;
    ++sram_components;
    std::vector<double> actual;
    std::vector<double> ours;
    std::vector<double> theirs;
    for (const auto* s : eval) {
      actual.push_back(s->golden.of(c).sram);
      ours.push_back(autopower.sram_model(c).predict(s->ctx));
      theirs.push_back(
          minus.predict_group(c, baselines::PowerGroup::kSram, s->ctx));
    }
    all_actual.insert(all_actual.end(), actual.begin(), actual.end());
    all_pred.insert(all_pred.end(), ours.begin(), ours.end());
    const double m_ours = ml::mape(actual, ours);
    const double m_theirs = ml::mape(actual, theirs);
    if (m_ours <= m_theirs) ++wins;
    table.add_row({std::string(arch::component_name(c)),
                   util::fmt_pct(m_ours), util::fmt_pct(m_theirs),
                   util::fmt(ml::pearson_r(actual, ours)),
                   util::fmt(ml::pearson_r(actual, theirs)),
                   m_ours <= m_theirs ? "AutoPower" : "AutoPower-"});
  }
  table.print(std::cout);
  std::printf("\nAutoPower wins on %d / %d SRAM components.\n", wins,
              sram_components);
  std::printf("Aggregate SRAM-group accuracy: MAPE=%.2f%% R=%.2f\n",
              ml::mape(all_actual, all_pred),
              ml::pearson_r(all_actual, all_pred));

  // Sec. III-B4: SRAM Block hardware model accuracy on held-out configs.
  double shape_errors = 0.0;
  int shape_checks = 0;
  for (const auto& cfg : arch::boom_design_space()) {
    bool is_train = false;
    for (const auto& name : train_configs) is_train |= cfg.name() == name;
    if (is_train) continue;
    for (arch::ComponentKind c : arch::all_components()) {
      const auto& nl = golden.netlist_of(cfg)[static_cast<std::size_t>(c)];
      for (const auto& pos : nl.sram_positions) {
        const auto pred =
            autopower.sram_model(c).predict_block(cfg, pos.name);
        const auto rel = [](int a, int p) {
          return 100.0 * std::abs(a - p) / std::max(a, 1);
        };
        shape_errors += rel(pos.block_width, pred.width) +
                        rel(pos.block_depth, pred.depth) +
                        rel(pos.block_count, pred.count);
        shape_checks += 3;
      }
    }
  }
  std::printf(
      "SRAM Block hardware model MAPE over width/depth/count on held-out "
      "configs: %.3f%% (%d checks)\n",
      shape_errors / shape_checks, shape_checks);
  return 0;
}
