// Extension benchmark: PANDA-style baseline (paper reference [4]).
//
// PANDA unifies analytical resource functions with ML activity models; it
// is data-efficient but needs design-specific architect expertise for the
// resource functions.  This bench places it between AutoPower (fully
// automatic) and McPAT-Calib on the few-shot axis, quantifying what the
// expertise buys and what AutoPower's automation gives up (nothing, per
// the paper's claim).

#include <cstdio>
#include <iostream>

#include "baselines/panda.hpp"
#include "core/autopower.hpp"
#include "exp/harness.hpp"
#include "util/table.hpp"

using namespace autopower;

int main() {
  std::puts("=== Extension: PANDA-style baseline vs AutoPower ===\n");

  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(sim, golden);

  util::TablePrinter table({"k", "Method", "MAPE", "R2", "R"});
  for (int k : {2, 3, 4}) {
    const auto train_configs = exp::ExperimentData::training_configs(k);
    const auto train_ctx = data.contexts_of(train_configs);

    core::AutoPowerModel autopower;
    autopower.train(train_ctx, golden);
    baselines::PandaBaseline panda;
    panda.train(train_ctx, golden);

    const auto ap = exp::evaluate_predictor(
        data, train_configs, "AutoPower",
        [&](const core::EvalContext& c) {
          return autopower.predict_total(c);
        });
    const auto pd = exp::evaluate_predictor(
        data, train_configs, "PANDA-style",
        [&](const core::EvalContext& c) { return panda.predict_total(c); });

    for (const auto* r : {&ap, &pd}) {
      table.add_row({std::to_string(k), r->method,
                     util::fmt_pct(r->accuracy.mape),
                     util::fmt(r->accuracy.r2),
                     util::fmt(r->accuracy.pearson)});
    }
  }
  table.print(std::cout);
  std::puts(
      "\nPANDA's resource functions are engineer-written (design-specific "
      "expertise); AutoPower reaches comparable or better accuracy fully "
      "automatically.");
  return 0;
}
