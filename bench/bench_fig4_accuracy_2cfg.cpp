// Reproduces paper Fig. 4: end-to-end total-power accuracy with TWO known
// configurations for training — AutoPower vs McPAT-Calib (and the
// McPAT-Calib + Component ablation).
//
// Paper reference points: AutoPower MAPE 4.36% / R^2 0.96;
// McPAT-Calib MAPE 9.29% / R^2 0.87.  The expected *shape* is AutoPower
// clearly ahead on both metrics in the few-shot regime.

#include <cstdio>

#include "accuracy_report.hpp"

int main() {
  std::puts("=== Fig. 4: accuracy with 2 training configurations ===\n");
  autopower::bench::print_accuracy_comparison(/*k_train=*/2,
                                              /*print_scatter=*/true);
  return 0;
}
