// Surrogate-guided exploration vs the exhaustive sweep: the explore
// loop must find the grid's true ipc_per_watt optimum while touching an
// order of magnitude fewer simulator cells.
//
//   1. Exhaustive baseline: serve::run_sweep over a grid of
//      AUTOPOWER_BENCH_EXPLORE_CELLS configurations (default 1e5),
//      metric ipc_per_watt, top-1 — every configuration is simulated.
//   2. explore::run_explore over the SAME grid with a fresh structural
//      cache (no warm-state subsidy from the baseline): model-scored
//      candidates, simulator-verified elites only.
//
// Self-checked bars (exit 1 on a miss):
//   * equality: explore's best VERIFIED ipc_per_watt must equal the
//     exhaustive optimum exactly — verified rows are bit-identical to
//     sweep rows, so finding the argmax config means exact agreement;
//   * economy:  explore's simulator-verified configurations must be at
//     most 1/10 of the grid (the ">=10x fewer simulator cells" claim).
//
// `--json <path>` writes the headline numbers (candidates/sec scored,
// simulator-calls-avoided ratio) for tools/check.sh to collect into
// BENCH_explore.json.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "arch/params.hpp"
#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "explore/explore.hpp"
#include "power/golden.hpp"
#include "serve/sweep.hpp"
#include "sim/perfsim.hpp"
#include "util/structural_cache.hpp"

using namespace autopower;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

std::size_t target_cells() {
  const char* env = std::getenv("AUTOPOWER_BENCH_EXPLORE_CELLS");
  if (env == nullptr || *env == '\0') return 100'000;
  const unsigned long long v = std::strtoull(env, nullptr, 10);
  return v == 0 ? 100'000 : static_cast<std::size_t>(v);
}

// Builds a grid of roughly `target` configurations over window/queue
// parameters (cheap per-cell under the shared structural memo, all
// values plausible Table II neighbourhood points so every cell
// evaluates).  Same recipe as bench_sim_throughput's streaming stage.
std::vector<serve::SweepAxis> bench_axes(std::size_t target) {
  const struct {
    arch::HwParam param;
    int first, step;
  } pools[] = {
      {arch::HwParam::kRobEntry, 32, 16},
      {arch::HwParam::kFetchBufferEntry, 8, 4},
      {arch::HwParam::kLdqStqEntry, 8, 4},
      {arch::HwParam::kIntPhyRegister, 48, 8},
      {arch::HwParam::kFpPhyRegister, 48, 8},
      {arch::HwParam::kBranchCount, 8, 2},
      {arch::HwParam::kMshrEntry, 2, 1},
  };
  std::vector<serve::SweepAxis> axes;
  std::size_t cells = 1;
  for (const auto& pool : pools) {
    const std::size_t want = target / cells;
    if (want < 2) break;
    const std::size_t n = std::min<std::size_t>(want, 10);
    serve::SweepAxis axis{pool.param, {}};
    for (std::size_t i = 0; i < n; ++i) {
      axis.values.push_back(pool.first + static_cast<int>(i) * pool.step);
    }
    cells *= n;
    axes.push_back(std::move(axis));
  }
  return axes;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  bool ok = true;

  const auto axes = bench_axes(target_cells());
  const std::vector<std::string> workloads = {"dhrystone"};
  const serve::GridCursor cursor(arch::boom_config("C8"), axes);
  std::printf("grid                      : %zu configs x %zu workload(s)\n",
              cursor.size(), workloads.size());

  sim::PerfSimulator train_sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(train_sim, golden);
  core::AutoPowerModel model;
  model.train(data.contexts_of(exp::ExperimentData::training_configs(2)),
              golden);

  // --- 1. Exhaustive baseline: every configuration simulated -------------
  serve::SweepSpec sweep_spec;
  sweep_spec.base = "C8";
  sweep_spec.axes = axes;
  sweep_spec.workloads = workloads;
  sweep_spec.threads = 2;
  sweep_spec.metric = serve::SweepMetric::kIpcPerWatt;
  sweep_spec.top = 1;
  auto start = std::chrono::steady_clock::now();
  const auto sweep = serve::run_sweep(model, sweep_spec);
  const double sweep_s = seconds_since(start);
  if (sweep.rows.empty()) {
    std::printf("FAIL: exhaustive sweep produced no rows\n");
    return 1;
  }
  const auto& sweep_best = sweep.rows.front();
  std::printf("exhaustive sweep @ 2t     : %7.1f cells/s  (%.1f s, "
              "%zu simulator configs)\n",
              double(sweep.evaluations) / sweep_s, sweep_s, sweep.configs);
  std::printf("exhaustive optimum        : %s  ipc/W=%.6f\n",
              sweep_best.config.name().c_str(), sweep_best.ipc_per_watt);

  // --- 2. Surrogate-guided search, fresh structural cache ----------------
  explore::ExploreSpec spec;
  spec.base = "C8";
  spec.axes = axes;
  spec.workloads = workloads;
  spec.threads = 2;
  spec.seed = 1;
  spec.population = 64;
  spec.generations = 40;
  spec.verify_top = 8;
  start = std::chrono::steady_clock::now();
  const auto report = explore::run_explore(
      model, spec, std::make_shared<util::StructuralSimCache>());
  const double explore_s = seconds_since(start);
  if (report.frontier.empty()) {
    std::printf("FAIL: explore produced an empty frontier\n");
    return 1;
  }
  // The frontier is sorted ipc_per_watt descending; its head is the best
  // verified configuration.
  const auto& explore_best = report.frontier.front().row;
  const double candidates_per_s =
      double(report.candidates_scored) / explore_s;
  const double avoided_ratio =
      double(cursor.size()) / double(std::max<std::size_t>(1, report.verified));
  std::printf("explore @ 2t              : %7.1f candidates/s scored  "
              "(%.1f s, %zu scored, %zu simulator configs)\n",
              candidates_per_s, explore_s, report.candidates_scored,
              report.verified);
  std::printf("explore best verified     : %s  ipc/W=%.6f\n",
              explore_best.config.name().c_str(), explore_best.ipc_per_watt);
  std::printf("simulator calls avoided   : %.1fx fewer than exhaustive "
              "(bar 10.0x)\n",
              avoided_ratio);

  if (explore_best.ipc_per_watt != sweep_best.ipc_per_watt) {
    std::printf("FAIL: explore best ipc_per_watt %.9f != exhaustive optimum "
                "%.9f\n",
                explore_best.ipc_per_watt, sweep_best.ipc_per_watt);
    ok = false;
  }
  if (report.verified * 10 > cursor.size()) {
    std::printf("FAIL: explore verified %zu configs — more than 1/10 of the "
                "%zu-cell grid\n",
                report.verified, cursor.size());
    ok = false;
  }
  if (!report.elite_err.empty()) {
    std::printf("model-vs-sim elite error  : first gen %.4f, last gen %.4f\n",
                report.elite_err.front(), report.elite_err.back());
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(
          f,
          "{\n"
          "  \"grid_configs\": %zu,\n"
          "  \"sweep_s\": %.3f,\n"
          "  \"sweep_cells_per_s\": %.1f,\n"
          "  \"explore_s\": %.3f,\n"
          "  \"candidates_scored\": %zu,\n"
          "  \"candidates_per_s\": %.1f,\n"
          "  \"simulator_configs_verified\": %zu,\n"
          "  \"sim_calls_avoided_ratio\": %.2f,\n"
          "  \"best_ipc_per_watt\": %.9f,\n"
          "  \"optimum_matched\": %s\n"
          "}\n",
          cursor.size(), sweep_s, double(sweep.evaluations) / sweep_s,
          explore_s, report.candidates_scored, candidates_per_s,
          report.verified, avoided_ratio, explore_best.ipc_per_watt,
          explore_best.ipc_per_watt == sweep_best.ipc_per_watt ? "true"
                                                               : "false");
      std::fclose(f);
    } else {
      std::printf("FAIL: cannot write %s\n", json_path.c_str());
      ok = false;
    }
  }

  std::printf(ok ? "PASS\n" : "FAIL\n");
  return ok ? 0 : 1;
}
