// Reproduces paper Fig. 7: per-component clock-power accuracy — the
// structured AutoPower clock model (Eq. 7 with F_reg / F_gate / F_alpha')
// against AutoPower−, which regresses each component's clock power with a
// direct ML model.
//
// Also reports the Sec. III-B3 sub-model accuracy: the MAPE of the
// register-count and gating-rate predictions (paper: ~6.93% on average
// with 2 training configurations) and the aggregate clock-group accuracy
// (paper: MAPE 11.37%, R 0.93).

#include <cstdio>
#include <iostream>
#include <vector>

#include "baselines/autopower_minus.hpp"
#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "ml/metrics.hpp"
#include "util/table.hpp"

using namespace autopower;

int main() {
  std::puts("=== Fig. 7: clock power, AutoPower vs AutoPower- (k=2) ===\n");

  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(sim, golden);
  const auto train_configs = exp::ExperimentData::training_configs(2);
  const auto train_ctx = data.contexts_of(train_configs);

  core::AutoPowerModel autopower;
  autopower.train(train_ctx, golden);
  baselines::AutoPowerMinus minus;
  minus.train(train_ctx, golden);

  const auto eval = data.samples_excluding(train_configs);

  util::TablePrinter table({"Component", "AutoPower MAPE", "AutoPower- MAPE",
                            "AutoPower R", "AutoPower- R", "Winner"});
  int wins = 0;
  std::vector<double> all_actual;
  std::vector<double> all_pred;
  for (arch::ComponentKind c : arch::all_components()) {
    std::vector<double> actual;
    std::vector<double> ours;
    std::vector<double> theirs;
    for (const auto* s : eval) {
      actual.push_back(s->golden.of(c).clock);
      ours.push_back(autopower.clock_model(c).predict(s->ctx));
      theirs.push_back(minus.predict_group(
          c, baselines::PowerGroup::kClock, s->ctx));
    }
    all_actual.insert(all_actual.end(), actual.begin(), actual.end());
    all_pred.insert(all_pred.end(), ours.begin(), ours.end());
    const double m_ours = ml::mape(actual, ours);
    const double m_theirs = ml::mape(actual, theirs);
    if (m_ours <= m_theirs) ++wins;
    table.add_row({std::string(arch::component_name(c)),
                   util::fmt_pct(m_ours), util::fmt_pct(m_theirs),
                   util::fmt(ml::pearson_r(actual, ours)),
                   util::fmt(ml::pearson_r(actual, theirs)),
                   m_ours <= m_theirs ? "AutoPower" : "AutoPower-"});
  }
  table.print(std::cout);
  std::printf("\nAutoPower wins on %d / %zu components.\n", wins,
              arch::kNumComponents);
  std::printf("Aggregate clock-group accuracy: MAPE=%.2f%% R=%.2f\n",
              ml::mape(all_actual, all_pred),
              ml::pearson_r(all_actual, all_pred));

  // Sec. III-B3: register count and gating rate sub-model accuracy.
  std::vector<double> r_actual;
  std::vector<double> r_pred;
  std::vector<double> g_actual;
  std::vector<double> g_pred;
  for (const auto& cfg : arch::boom_design_space()) {
    bool is_train = false;
    for (const auto& name : train_configs) is_train |= cfg.name() == name;
    if (is_train) continue;
    for (arch::ComponentKind c : arch::all_components()) {
      const auto& nl = golden.netlist_of(cfg)[static_cast<std::size_t>(c)];
      r_actual.push_back(nl.register_count);
      r_pred.push_back(autopower.clock_model(c).predict_register_count(cfg));
      g_actual.push_back(nl.gating_rate);
      g_pred.push_back(autopower.clock_model(c).predict_gating_rate(cfg));
    }
  }
  std::printf(
      "Sub-models (held-out configs): register count MAPE=%.2f%%, "
      "gating rate MAPE=%.2f%%, average=%.2f%%\n",
      ml::mape(r_actual, r_pred), ml::mape(g_actual, g_pred),
      0.5 * (ml::mape(r_actual, r_pred) + ml::mape(g_actual, g_pred)));
  return 0;
}
