// Reproduces paper Table I and the Sec. II-B worked example: the
// scaling-pattern hardware model fitted on the IFU metadata table (meta)
// with only C1 and C15 known.
//
// The paper derives: Capacity = 240 * FetchWidth * DecodeWidth,
// Throughput = 30 * FetchWidth, Width = 30 * FetchWidth, hence Count = 1
// and Depth = 8 * DecodeWidth.  This bench prints the fitted laws and the
// predicted vs actual block shape for all 15 configurations.

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/scaling_model.hpp"
#include "netlist/synthesis.hpp"
#include "util/error.hpp"
#include "util/table.hpp"

using namespace autopower;

int main() {
  std::puts("=== Table I: scaling-pattern hardware model, IFU 'meta' ===\n");

  const netlist::SynthesisModel synth;
  const auto find_meta = [&](const arch::HardwareConfig& cfg) {
    const auto nl = synth.synthesize(cfg, arch::ComponentKind::kIfu);
    for (const auto& pos : nl.sram_positions) {
      if (pos.name == "meta") return pos;
    }
    throw util::Error("IFU has no 'meta' position");
  };

  // Table I: the two known configurations.
  util::TablePrinter known({"Training Config", "FetchWidth", "DecodeWidth",
                            "FetchBufferEntry", "width", "depth", "count"});
  std::vector<core::BlockObservation> obs;
  for (const char* name : {"C1", "C15"}) {
    const auto& cfg = arch::boom_config(name);
    const auto meta = find_meta(cfg);
    known.add_row(
        {name, std::to_string(cfg.value(arch::HwParam::kFetchWidth)),
         std::to_string(cfg.value(arch::HwParam::kDecodeWidth)),
         std::to_string(cfg.value(arch::HwParam::kFetchBufferEntry)),
         std::to_string(meta.block_width), std::to_string(meta.block_depth),
         std::to_string(meta.block_count)});
    obs.push_back({&cfg, meta.block_width, meta.block_depth,
                   meta.block_count});
  }
  known.print(std::cout);

  core::ScalingPatternModel model;
  model.fit(arch::component_hw_params(arch::ComponentKind::kIfu), obs);

  std::puts("\nFitted directly-proportional laws:");
  std::printf("  Capacity   = %s  (max rel. err %.2e)\n",
              model.capacity_law().to_string().c_str(),
              model.capacity_law().max_rel_error);
  std::printf("  Throughput = %s  (max rel. err %.2e)\n",
              model.throughput_law().to_string().c_str(),
              model.throughput_law().max_rel_error);
  std::printf("  Width      = %s  (max rel. err %.2e)\n",
              model.width_law().to_string().c_str(),
              model.width_law().max_rel_error);

  std::puts("\nPrediction on the full design space:");
  util::TablePrinter pred_table({"Config", "width (pred/actual)",
                                 "depth (pred/actual)",
                                 "count (pred/actual)", "exact"});
  int exact = 0;
  for (const auto& cfg : arch::boom_design_space()) {
    const auto meta = find_meta(cfg);
    const auto pred = model.predict(cfg);
    const bool ok = pred.width == meta.block_width &&
                    pred.depth == meta.block_depth &&
                    pred.count == meta.block_count;
    exact += ok;
    pred_table.add_row(
        {cfg.name(),
         std::to_string(pred.width) + "/" + std::to_string(meta.block_width),
         std::to_string(pred.depth) + "/" + std::to_string(meta.block_depth),
         std::to_string(pred.count) + "/" + std::to_string(meta.block_count),
         ok ? "yes" : "NO"});
  }
  pred_table.print(std::cout);
  std::printf("\nExact shape recovery: %d / 15 configurations.\n", exact);
  return 0;
}
