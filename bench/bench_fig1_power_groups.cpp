// Reproduces paper Fig. 1, Observation 1: the per-group power breakdown of
// the BOOM core at the layout stage — clock and SRAM dominate.
//
// Prints, per configuration (averaged over the 8 riscv-tests workloads),
// the percentage of total power in each power group, plus the overall
// average breakdown and the five most power-hungry components.

#include <algorithm>
#include <array>
#include <cstdio>
#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "exp/dataset.hpp"
#include "util/table.hpp"

using namespace autopower;

int main() {
  std::puts("=== Fig. 1 / Observation 1: power group breakdown ===");
  std::puts("Golden (layout-stage) power, averaged over 8 workloads.\n");

  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(sim, golden);

  util::TablePrinter table(
      {"Config", "Total (mW)", "Clock %", "SRAM %", "Reg %", "Comb %",
       "Clock+SRAM %"});

  std::map<std::string, std::pair<power::PowerGroups, int>> per_config;
  for (const auto& s : data.samples()) {
    auto& [acc, n] = per_config[s.ctx.cfg->name()];
    acc += s.golden.totals();
    n += 1;
  }

  power::PowerGroups overall;
  int overall_n = 0;
  for (const auto& cfg : arch::boom_design_space()) {
    const auto& [acc, n] = per_config.at(cfg.name());
    const double t = acc.total();
    table.add_row({cfg.name(), util::fmt(t / n),
                   util::fmt(100.0 * acc.clock / t),
                   util::fmt(100.0 * acc.sram / t),
                   util::fmt(100.0 * acc.logic_register / t),
                   util::fmt(100.0 * acc.logic_comb / t),
                   util::fmt(100.0 * (acc.clock + acc.sram) / t)});
    overall += acc;
    overall_n += n;
  }
  const double ot = overall.total();
  table.add_row({"avg", util::fmt(ot / overall_n),
                 util::fmt(100.0 * overall.clock / ot),
                 util::fmt(100.0 * overall.sram / ot),
                 util::fmt(100.0 * overall.logic_register / ot),
                 util::fmt(100.0 * overall.logic_comb / ot),
                 util::fmt(100.0 * (overall.clock + overall.sram) / ot)});
  table.print(std::cout);

  // Top components by average power share.
  std::array<double, arch::kNumComponents> comp_power{};
  double total_power = 0.0;
  for (const auto& s : data.samples()) {
    for (const auto& cp : s.golden.components) {
      comp_power[static_cast<std::size_t>(cp.component)] +=
          cp.groups.total();
      total_power += cp.groups.total();
    }
  }
  std::vector<std::pair<double, arch::ComponentKind>> ranked;
  for (arch::ComponentKind c : arch::all_components()) {
    ranked.emplace_back(comp_power[static_cast<std::size_t>(c)], c);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::puts("\nTop components by power share:");
  for (int i = 0; i < 5; ++i) {
    std::printf("  %-16s %5.1f%%\n",
                std::string(arch::component_name(ranked[i].second)).c_str(),
                100.0 * ranked[i].first / total_power);
  }

  std::puts("\nObservation 1 holds if Clock+SRAM > 60% on average.");
  return 0;
}
