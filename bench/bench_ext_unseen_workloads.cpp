// Extension benchmark: generalisation to workloads never seen in training.
//
// The paper trains and evaluates on the same 8 riscv-tests workloads
// (configurations are held out, workloads are not).  A deployed model will
// meet new programs, so this bench trains on the 8 riscv-tests of the two
// known configurations and evaluates on fft and coremark — workloads with
// event signatures outside the training set — across the 13 held-out
// configurations.  Program-level features are exercised on genuinely new
// programs here.

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "ml/metrics.hpp"
#include "util/table.hpp"

using namespace autopower;

int main() {
  std::puts("=== Extension: unseen-workload generalisation (k=2) ===\n");

  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(sim, golden);
  const auto train_configs = exp::ExperimentData::training_configs(2);

  core::AutoPowerModel model;
  model.train(data.contexts_of(train_configs), golden);

  util::TablePrinter table({"Workload", "Seen in training?", "MAPE", "R"});

  // Reference: the in-grid workloads on held-out configurations.
  {
    std::vector<double> actual;
    std::vector<double> pred;
    for (const auto* s : data.samples_excluding(train_configs)) {
      actual.push_back(s->golden.total());
      pred.push_back(model.predict_total(s->ctx));
    }
    table.add_row({"riscv-tests (8)", "yes",
                   util::fmt_pct(ml::mape(actual, pred)),
                   util::fmt(ml::pearson_r(actual, pred))});
  }

  // Unseen workloads, same held-out configurations.
  for (const auto& w : workload::extension_workloads()) {
    std::vector<double> actual;
    std::vector<double> pred;
    for (const auto& cfg : arch::boom_design_space()) {
      bool is_train = false;
      for (const auto& name : train_configs) is_train |= cfg.name() == name;
      if (is_train) continue;
      core::EvalContext ctx;
      ctx.cfg = &cfg;
      ctx.workload = w.name;
      ctx.program = workload::program_features(w);
      ctx.events = sim.simulate(cfg, w);
      actual.push_back(golden.evaluate(cfg, ctx.events).total());
      pred.push_back(model.predict_total(ctx));
    }
    table.add_row({w.name, "no", util::fmt_pct(ml::mape(actual, pred)),
                   util::fmt(ml::pearson_r(actual, pred))});
  }
  table.print(std::cout);
  std::puts(
      "\nUnseen workloads land within the training envelope of the event "
      "space, so accuracy degrades gracefully rather than collapsing.");
  return 0;
}
