// Microbenchmarks (google-benchmark): runtime cost of the building blocks.
//
// The paper's pitch is that architecture-level models replace a weeks-long
// VLSI flow with something interactive; these benchmarks document the
// actual costs: golden-pipeline evaluation, performance simulation, model
// training, and per-sample prediction latency.

#include <benchmark/benchmark.h>

#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "ml/gbt.hpp"
#include "ml/linear.hpp"
#include "sim/perfsim.hpp"
#include "util/rng.hpp"

using namespace autopower;

namespace {

/// Shared fixtures, built once.
struct Fixture {
  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  exp::ExperimentData data;
  std::vector<core::EvalContext> train_ctx;
  core::AutoPowerModel model;

  Fixture() : data(exp::ExperimentData::build(sim, golden)) {
    const auto cfgs = exp::ExperimentData::training_configs(2);
    train_ctx = data.contexts_of(cfgs);
    model.train(train_ctx, golden);
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

ml::Dataset synthetic_dataset(std::size_t n, std::size_t p) {
  std::vector<std::string> names;
  for (std::size_t j = 0; j < p; ++j) names.push_back("f" + std::to_string(j));
  ml::Dataset data(names);
  util::Rng rng(42);
  std::vector<double> row(p);
  for (std::size_t i = 0; i < n; ++i) {
    double y = 0.0;
    for (std::size_t j = 0; j < p; ++j) {
      row[j] = rng.next_range(0.0, 4.0);
      y += (j + 1) * row[j];
    }
    data.add_sample(row, y + rng.next_gauss());
  }
  return data;
}

void BM_RidgeFit(benchmark::State& state) {
  const auto data = synthetic_dataset(
      static_cast<std::size_t>(state.range(0)), 10);
  for (auto _ : state) {
    ml::RidgeRegression model;
    model.fit(data);
    benchmark::DoNotOptimize(model.coefficients());
  }
}
BENCHMARK(BM_RidgeFit)->Arg(16)->Arg(128);

void BM_GbtFit(benchmark::State& state) {
  const auto data = synthetic_dataset(
      static_cast<std::size_t>(state.range(0)), 10);
  for (auto _ : state) {
    ml::GBTRegressor model;
    model.fit(data);
    benchmark::DoNotOptimize(model.num_trees());
  }
}
BENCHMARK(BM_GbtFit)->Arg(16)->Arg(128);

void BM_PerfSimWorkload(benchmark::State& state) {
  sim::PerfSimulator sim;  // fresh: no memoised phases
  const auto& cfg = arch::boom_config("C8");
  const auto& w = workload::riscv_tests_workloads().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate(cfg, w));
  }
}
BENCHMARK(BM_PerfSimWorkload);

void BM_GoldenEvaluate(benchmark::State& state) {
  auto& f = fixture();
  const auto& s = f.data.samples().front();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.golden.evaluate(*s.ctx.cfg, s.ctx.events));
  }
}
BENCHMARK(BM_GoldenEvaluate);

void BM_AutoPowerTrainK2(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    core::AutoPowerModel model;
    model.train(f.train_ctx, f.golden);
    benchmark::DoNotOptimize(model.trained());
  }
}
BENCHMARK(BM_AutoPowerTrainK2);

void BM_AutoPowerPredict(benchmark::State& state) {
  auto& f = fixture();
  const auto& ctx = f.data.samples().back().ctx;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.model.predict_total(ctx));
  }
}
BENCHMARK(BM_AutoPowerPredict);

}  // namespace

BENCHMARK_MAIN();
