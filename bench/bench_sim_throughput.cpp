// Performance-simulator throughput: the structural-memo decomposition and
// the parallel sweep driver, each self-checked against the exact behaviour
// it replaces.
//
//   1. Phase compute on a 64-config sweep (base C8, axes over ROB / fetch
//      buffer / LDQ-STQ — parameters the structural sub-simulations never
//      read).  Cold = a fresh PerfSimulator per configuration, which is
//      exactly what the old whole-config phase memo cost on a sweep (every
//      configuration was a distinct key, so it never hit across configs).
//      Memoized = fresh simulators sharing one StructuralSimCache.  All
//      event vectors must be bit-identical; the memoized sweep must clear
//      a 5x speedup bar.
//   2. Shared-vs-private memo hit rates: the same sweep evaluated by 4
//      workers sharing one cache vs 4 workers with private caches.
//      Reported (not gated) — it shows why the serve/sweep layers share.
//   3. End-to-end sweep throughput at 4 threads: serve::run_sweep (shared
//      memo) vs the same fan-out with a fresh un-memoized simulator per
//      evaluation (the old per-query cost).  Predicted powers must be
//      bit-identical; the shared-memo sweep must clear a 2x bar.
//   4. Large-grid streaming: a grid of AUTOPOWER_BENCH_STREAM_CELLS
//      cells (default 1e7 — past the old 1e6 materialisation cap) run
//      to completion through the lazy GridCursor with a fixed
//      --memory-budget and a bounded top-16 ranker.  Reports cells/sec
//      and the process peak RSS (VmHWM); FAILS if the grid does not
//      complete or peak RSS exceeds the bar — the "RAM stays flat at
//      million-cell scale" acceptance gate.
//
// The bench FAILS (exit 1) on any identity violation or missed bar.
// `--json <path>` additionally writes the headline numbers for
// tools/check.sh to collect into BENCH_sim.json.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "arch/events.hpp"
#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "power/golden.hpp"
#include "serve/sweep.hpp"
#include "sim/perfsim.hpp"
#include "util/metrics.hpp"
#include "util/structural_cache.hpp"
#include "util/thread_pool.hpp"
#include "workload/workload.hpp"

using namespace autopower;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

bool identical(const arch::EventVector& a, const arch::EventVector& b) {
  for (std::size_t i = 0; i < arch::kNumEvents; ++i) {
    const auto kind = static_cast<arch::EventKind>(i);
    if (a[kind] != b[kind]) return false;
  }
  return true;
}

// 4 x 4 x 4 = 64 configurations around C8, varying only parameters the
// structural sub-simulations never read (ROB, fetch buffer, LDQ/STQ), the
// canonical "tune the window, keep the memory system" DSE neighbourhood.
constexpr const char* kGrid =
    "RobEntry=64,80,96,112;FetchBufferEntry=16,24,32,40;"
    "LdqStqEntry=16,24,32,36";
const std::vector<std::string> kWorkloads = {"dhrystone", "qsort"};

// --- Streaming stage sizing --------------------------------------------------

// Peak-RSS ceiling for the streaming stage.  The run must hold a bounded
// structural cache (64 MiB budget), per-worker phase memos and top-16
// heaps regardless of grid size, so the whole process — model, training
// data from stage 3 included — stays far under this.
constexpr double kStreamRssBarMiB = 1024.0;

std::size_t stream_target_cells() {
  const char* env = std::getenv("AUTOPOWER_BENCH_STREAM_CELLS");
  if (env == nullptr || *env == '\0') return 10'000'000;
  const unsigned long long v = std::strtoull(env, nullptr, 10);
  return v == 0 ? 10'000'000 : static_cast<std::size_t>(v);
}

// Builds a grid of roughly `target` configurations: up to seven 10-value
// axes over window/queue parameters (cheap per-cell, structurally
// memoised) plus a leading structural CacheWay axis so the bounded L2
// sees more than one key per lane.  All values are plausible Table II
// neighbourhood points, so every cell evaluates rather than failing fast.
std::vector<serve::SweepAxis> stream_axes(std::size_t target) {
  std::vector<serve::SweepAxis> axes;
  std::size_t cells = 1;
  if (target >= 2) {
    axes.push_back({arch::HwParam::kCacheWay, {2, 4}});
    cells = 2;
  }
  const struct {
    arch::HwParam param;
    int first, step;
  } pools[] = {
      {arch::HwParam::kRobEntry, 32, 16},
      {arch::HwParam::kFetchBufferEntry, 8, 4},
      {arch::HwParam::kLdqStqEntry, 8, 4},
      {arch::HwParam::kIntPhyRegister, 48, 8},
      {arch::HwParam::kFpPhyRegister, 48, 8},
      {arch::HwParam::kBranchCount, 8, 2},
      {arch::HwParam::kMshrEntry, 2, 1},
  };
  for (const auto& pool : pools) {
    const std::size_t want = target / cells;
    if (want < 2) break;
    const std::size_t n = std::min<std::size_t>(want, 10);
    serve::SweepAxis axis{pool.param, {}};
    for (std::size_t i = 0; i < n; ++i) {
      axis.values.push_back(pool.first + static_cast<int>(i) * pool.step);
    }
    cells *= n;
    axes.push_back(std::move(axis));
  }
  return axes;
}

// Peak resident set (VmHWM) of this process, in MiB; 0 if unreadable.
double peak_rss_mib() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0.0;
  char line[256];
  double kib = 0.0;
  while (std::fgets(line, sizeof line, f) != nullptr) {
    if (std::strncmp(line, "VmHWM:", 6) == 0) {
      kib = std::strtod(line + 6, nullptr);
      break;
    }
  }
  std::fclose(f);
  return kib / 1024.0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  bool ok = true;

  const auto axes = serve::parse_grid(kGrid);
  const auto configs = serve::expand_grid(arch::boom_config("C8"), axes);
  std::vector<const workload::WorkloadProfile*> profiles;
  for (const auto& name : kWorkloads) {
    profiles.push_back(&workload::workload_by_name(name));
  }
  const std::size_t evals = configs.size() * profiles.size();
  std::printf("sweep grid                 : %zu configs x %zu workloads"
              " = %zu evaluations\n",
              configs.size(), profiles.size(), evals);

  // --- 1. Cold vs memoized phase compute ---------------------------------
  std::vector<arch::EventVector> cold(evals);
  auto start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < configs.size(); ++c) {
    sim::PerfSimulator sim;  // private cache: no reuse across configs
    for (std::size_t w = 0; w < profiles.size(); ++w) {
      cold[c * profiles.size() + w] = sim.simulate(configs[c], *profiles[w]);
    }
  }
  const double cold_s = seconds_since(start);

  auto shared = std::make_shared<util::StructuralSimCache>();
  std::vector<arch::EventVector> memoized(evals);
  start = std::chrono::steady_clock::now();
  for (std::size_t c = 0; c < configs.size(); ++c) {
    sim::PerfSimulator sim(sim::SimOptions{}, shared);
    for (std::size_t w = 0; w < profiles.size(); ++w) {
      memoized[c * profiles.size() + w] =
          sim.simulate(configs[c], *profiles[w]);
    }
  }
  const double memo_s = seconds_since(start);
  const double phase_speedup = cold_s / memo_s;

  bool events_identical = true;
  for (std::size_t i = 0; i < evals; ++i) {
    if (!identical(cold[i], memoized[i])) events_identical = false;
  }
  const auto shared_stats = shared->stats();
  std::printf("phase compute, cold        : %.3f s\n", cold_s);
  std::printf("phase compute, memoized    : %.3f s  (%.1fx, bar 5.00x; "
              "memo %llu/%llu hit/miss)\n",
              memo_s, phase_speedup,
              static_cast<unsigned long long>(shared_stats.hits),
              static_cast<unsigned long long>(shared_stats.misses));
  std::printf("event vectors bit-identical: %s\n",
              events_identical ? "yes" : "NO");
  if (!events_identical) {
    std::printf("FAIL: memoized simulate diverged from a fresh simulator\n");
    ok = false;
  }
  if (phase_speedup < 5.0) {
    std::printf("FAIL: memoized phase compute below the 5x bar\n");
    ok = false;
  }

  // --- 2. Shared vs private memo hit rates at 4 workers ------------------
  // Same sweep, pulled off an atomic counter by 4 workers; only the cache
  // arrangement differs.
  const auto worker_sweep = [&](bool share) {
    auto cache = std::make_shared<util::StructuralSimCache>();
    util::StructuralSimCache::Stats private_total{};
    std::mutex stats_mu;
    std::atomic<std::size_t> next{0};
    util::ThreadPool pool(4);
    for (std::size_t w = 0; w < 4; ++w) {
      pool.submit([&] {
        auto mine = share ? cache
                          : std::make_shared<util::StructuralSimCache>();
        {
          // Scoped so the simulator's private L1 flushes its counters
          // back into `mine` before the stats are read.
          sim::PerfSimulator sim(sim::SimOptions{}, mine);
          for (;;) {
            const std::size_t i = next.fetch_add(1);
            if (i >= evals) break;
            (void)sim.simulate(configs[i / profiles.size()],
                               *profiles[i % profiles.size()]);
          }
        }
        if (!share) {
          const auto s = mine->stats();
          std::lock_guard lock(stats_mu);
          private_total.hits += s.hits;
          private_total.misses += s.misses;
        }
      });
    }
    pool.wait_idle();
    return share ? cache->stats() : private_total;
  };
  const auto shared_4t = worker_sweep(true);
  const auto private_4t = worker_sweep(false);
  std::printf("memo hit rate, 4t shared   : %.1f%%  (%llu/%llu hit/miss)\n",
              100.0 * shared_4t.hit_rate(),
              static_cast<unsigned long long>(shared_4t.hits),
              static_cast<unsigned long long>(shared_4t.misses));
  std::printf("memo hit rate, 4t private  : %.1f%%  (%llu/%llu hit/miss)\n",
              100.0 * private_4t.hit_rate(),
              static_cast<unsigned long long>(private_4t.hits),
              static_cast<unsigned long long>(private_4t.misses));

  // --- 3. End-to-end sweep throughput at 4 threads -----------------------
  sim::PerfSimulator train_sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(train_sim, golden);
  core::AutoPowerModel model;
  model.train(data.contexts_of(exp::ExperimentData::training_configs(2)),
              golden);

  // Old per-query cost: a fresh, un-memoized simulator per evaluation
  // (the whole-config memo never hit across a sweep's distinct configs).
  std::vector<double> old_mw(evals);
  std::atomic<std::size_t> next{0};
  start = std::chrono::steady_clock::now();
  {
    util::ThreadPool pool(4);
    for (std::size_t w = 0; w < 4; ++w) {
      pool.submit([&] {
        for (;;) {
          const std::size_t i = next.fetch_add(1);
          if (i >= evals) break;
          const auto& cfg = configs[i / profiles.size()];
          const auto& profile = *profiles[i % profiles.size()];
          sim::PerfSimulator sim;
          core::EvalContext ctx;
          ctx.cfg = &cfg;
          ctx.workload = profile.name;
          ctx.program = workload::program_features(profile);
          ctx.events = sim.simulate(cfg, profile);
          old_mw[i] = model.predict_total(ctx);
        }
      });
    }
    pool.wait_idle();
  }
  const double sweep_old_s = seconds_since(start);

  serve::SweepSpec spec;
  spec.base = "C8";
  spec.axes = axes;
  spec.workloads = kWorkloads;
  spec.threads = 4;
  start = std::chrono::steady_clock::now();
  const auto report = serve::run_sweep(model, spec);
  const double sweep_shared_s = seconds_since(start);
  const double sweep_speedup = sweep_old_s / sweep_shared_s;

  // run_sweep ranks its rows; compare cell-by-cell through config names.
  bool sweep_identical = report.evaluations == evals;
  std::size_t matched = 0;
  for (const auto& row : report.rows) {
    std::size_t c = 0;
    for (; c < configs.size(); ++c) {
      if (configs[c].name() == row.config.name()) break;
    }
    if (c == configs.size() || row.cells.size() != profiles.size()) {
      sweep_identical = false;
      continue;
    }
    for (std::size_t w = 0; w < row.cells.size(); ++w) {
      if (!row.cells[w].ok ||
          row.cells[w].total_mw != old_mw[c * profiles.size() + w]) {
        sweep_identical = false;
      } else {
        ++matched;
      }
    }
  }
  if (matched != evals) sweep_identical = false;

  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("sweep @ 4t, fresh sims     : %7.1f eval/s  (%.3f s)\n",
              evals / sweep_old_s, sweep_old_s);
  std::printf("sweep @ 4t, shared memo    : %7.1f eval/s  (%.3f s, %.2fx,"
              " bar 2.00x, %u hw threads)\n",
              evals / sweep_shared_s, sweep_shared_s, sweep_speedup, hw);
  std::printf("sweep powers bit-identical : %s\n",
              sweep_identical ? "yes" : "NO");
  if (!sweep_identical) {
    std::printf("FAIL: shared-memo sweep diverged from fresh simulators\n");
    ok = false;
  }
  if (sweep_speedup < 2.0) {
    std::printf("FAIL: shared-memo sweep below the 2x bar\n");
    ok = false;
  }

  // --- 4. Large-grid streaming under a fixed memory budget ---------------
  const std::size_t stream_target = stream_target_cells();
  serve::SweepSpec stream_spec;
  stream_spec.base = "C8";
  stream_spec.axes = stream_axes(stream_target);
  stream_spec.workloads = {"dhrystone"};
  stream_spec.threads = 2;
  stream_spec.top = 16;
  stream_spec.memory_budget = 64ull << 20;  // 64 MiB structural cache
  const serve::GridCursor stream_cursor(arch::boom_config(stream_spec.base),
                                        stream_spec.axes);
  const std::size_t stream_cells =
      stream_cursor.size() * stream_spec.workloads.size();
  std::printf("streaming grid             : %zu configs x %zu workloads"
              " = %zu cells (target %zu)\n",
              stream_cursor.size(), stream_spec.workloads.size(),
              stream_cells, stream_target);

  const auto failed_before =
      util::MetricsRegistry::global().counter("serve.sweep.cells_failed")
          .value();
  start = std::chrono::steady_clock::now();
  const auto stream_report = serve::run_sweep(model, stream_spec);
  const double stream_s = seconds_since(start);
  const double stream_rate = double(stream_report.evaluations) / stream_s;
  const double stream_rss = peak_rss_mib();
  const auto stream_failed =
      util::MetricsRegistry::global().counter("serve.sweep.cells_failed")
          .value() - failed_before;

  std::printf("streaming sweep @ 2t       : %7.1f cells/s  (%.1f s, "
              "top-%zu of %zu rows kept)\n",
              stream_rate, stream_s, stream_report.rows.size(),
              stream_report.configs);
  std::printf("streaming peak RSS         : %.1f MiB  (bar %.0f MiB; "
              "structural %llu/%llu hit/miss, %llu evicted)\n",
              stream_rss, kStreamRssBarMiB,
              static_cast<unsigned long long>(stream_report.structural.hits),
              static_cast<unsigned long long>(
                  stream_report.structural.misses),
              static_cast<unsigned long long>(
                  stream_report.structural.evictions));
  if (stream_report.evaluations != stream_cells ||
      stream_report.configs != stream_cursor.size()) {
    std::printf("FAIL: streaming sweep did not cover the whole grid\n");
    ok = false;
  }
  if (stream_report.rows.size() !=
      std::min<std::size_t>(16, stream_report.configs)) {
    std::printf("FAIL: top-k ranker kept the wrong number of rows\n");
    ok = false;
  }
  if (stream_failed != 0) {
    std::printf("FAIL: %llu streaming cells failed to evaluate\n",
                static_cast<unsigned long long>(stream_failed));
    ok = false;
  }
  if (stream_rss <= 0.0 || stream_rss > kStreamRssBarMiB) {
    std::printf("FAIL: streaming peak RSS outside the %.0f MiB bar\n",
                kStreamRssBarMiB);
    ok = false;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(
          f,
          "{\n"
          "  \"sweep_configs\": %zu,\n"
          "  \"sweep_evaluations\": %zu,\n"
          "  \"phase_cold_s\": %.6f,\n"
          "  \"phase_memoized_s\": %.6f,\n"
          "  \"phase_speedup\": %.3f,\n"
          "  \"memo_hit_rate_shared_4t\": %.4f,\n"
          "  \"memo_hit_rate_private_4t\": %.4f,\n"
          "  \"sweep_fresh_4t_s\": %.6f,\n"
          "  \"sweep_shared_4t_s\": %.6f,\n"
          "  \"sweep_speedup\": %.3f,\n"
          "  \"hardware_threads\": %u,\n"
          "  \"stream_cells\": %zu,\n"
          "  \"stream_configs\": %zu,\n"
          "  \"stream_s\": %.3f,\n"
          "  \"stream_cells_per_s\": %.1f,\n"
          "  \"stream_peak_rss_mib\": %.1f,\n"
          "  \"stream_rss_bar_mib\": %.0f,\n"
          "  \"stream_evictions\": %llu,\n"
          "  \"bit_identical\": %s\n"
          "}\n",
          configs.size(), evals, cold_s, memo_s, phase_speedup,
          shared_4t.hit_rate(), private_4t.hit_rate(), sweep_old_s,
          sweep_shared_s, sweep_speedup, hw, stream_cells,
          stream_report.configs, stream_s, stream_rate, stream_rss,
          kStreamRssBarMiB,
          static_cast<unsigned long long>(stream_report.structural.evictions),
          (events_identical && sweep_identical) ? "true" : "false");
      std::fclose(f);
    } else {
      std::printf("FAIL: cannot write %s\n", json_path.c_str());
      ok = false;
    }
  }

  std::printf(ok ? "PASS\n" : "FAIL\n");
  return ok ? 0 : 1;
}
