// Reproduces paper Fig. 5: end-to-end total-power accuracy with THREE
// known configurations for training.
//
// Paper reference points: AutoPower MAPE 3.64% / R^2 0.97;
// McPAT-Calib MAPE 7.07% / R^2 0.91.

#include <cstdio>

#include "accuracy_report.hpp"

int main() {
  std::puts("=== Fig. 5: accuracy with 3 training configurations ===\n");
  autopower::bench::print_accuracy_comparison(/*k_train=*/3,
                                              /*print_scatter=*/true);
  return 0;
}
