// Design ablation ABL1 (DESIGN.md): the paper argues that program-level
// features — microarchitecture-independent quantities the performance
// simulator cannot distort — improve the SRAM activity model ("All prior
// works do not take the program-level features into consideration",
// Sec. II-B).  This bench trains AutoPower with and without them and
// compares SRAM-group and end-to-end accuracy at k = 2.

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "ml/metrics.hpp"
#include "util/table.hpp"

using namespace autopower;

namespace {

struct Variant {
  const char* name;
  bool program_features;
};

}  // namespace

int main() {
  std::puts("=== Ablation: program-level features in the activity model ===\n");

  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(sim, golden);
  const auto train_configs = exp::ExperimentData::training_configs(2);
  const auto train_ctx = data.contexts_of(train_configs);
  const auto eval = data.samples_excluding(train_configs);

  util::TablePrinter table({"Variant", "SRAM MAPE", "SRAM R",
                            "Total MAPE", "Total R2"});
  for (const Variant v : {Variant{"with P features", true},
                          Variant{"without P features", false}}) {
    core::AutoPowerOptions options;
    options.sram.program_features = v.program_features;
    core::AutoPowerModel model(options);
    model.train(train_ctx, golden);

    std::vector<double> sram_actual;
    std::vector<double> sram_pred;
    std::vector<double> total_actual;
    std::vector<double> total_pred;
    for (const auto* s : eval) {
      const auto pred = model.predict(s->ctx);
      sram_actual.push_back(s->golden.totals().sram);
      sram_pred.push_back(pred.totals().sram);
      total_actual.push_back(s->golden.total());
      total_pred.push_back(pred.total());
    }
    table.add_row({v.name, util::fmt_pct(ml::mape(sram_actual, sram_pred)),
                   util::fmt(ml::pearson_r(sram_actual, sram_pred)),
                   util::fmt_pct(ml::mape(total_actual, total_pred)),
                   util::fmt(ml::r2_score(total_actual, total_pred))});
  }
  table.print(std::cout);
  return 0;
}
