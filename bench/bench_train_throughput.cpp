// Training-core throughput: the three fast paths of the training stack,
// each self-checked against the exact behaviour it replaces.
//
//   1. Tree building — GBT fit at n=2000 with the presorted exact-greedy
//      builder vs the per-node re-sorting reference.  The ensembles must
//      be byte-identical (same splits, same tie-breaking); the fast
//      builder must clear a 3x speedup bar.
//   2. Batched inference — predict_all on the flattened SoA forest vs a
//      per-sample predict() loop.  Bit-identical outputs; 2x bar,
//      single-threaded.
//   3. Parallel sub-model fitting — AutoPowerModel::train at 4 threads vs
//      1.  Archives must be byte-identical at any thread count; the
//      wall-clock speedup bar applies only when the host has at least as
//      many hardware threads as pool workers (otherwise the pool can only
//      interleave, so the speedup is reported but not enforced).
//
// The bench FAILS (exit 1) on any identity violation or missed bar.
// `--json <path>` additionally writes the headline numbers for
// tools/check.sh to collect.

#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "ml/gbt.hpp"
#include "power/golden.hpp"
#include "sim/perfsim.hpp"
#include "util/archive.hpp"
#include "util/rng.hpp"

using namespace autopower;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Activity-model-shaped data: a few informative columns, duplicate-heavy
// discrete columns, and one constant column, like real (H, E) matrices
// where hardware parameters repeat across workloads.
ml::Dataset synthetic_dataset(std::size_t n) {
  ml::Dataset data({"h0", "h1", "h2", "e0", "e1", "e2", "konst", "coarse"});
  util::Rng rng(99);
  for (std::size_t i = 0; i < n; ++i) {
    const double h0 = std::floor(rng.next_range(1.0, 5.0));
    const double h1 = std::floor(rng.next_range(0.0, 3.0)) * 16.0;
    const double h2 = std::floor(rng.next_range(0.0, 2.0));
    const double e0 = rng.next_range(0.0, 1.0);
    const double e1 = rng.next_range(0.0, 1.0);
    const double e2 = rng.next_range(0.0, 0.2);
    const double coarse = std::floor(rng.next_range(0.0, 20.0)) / 20.0;
    const double y = h0 * e0 + 0.02 * h1 * (e1 > 0.5 ? 1.0 : 0.3) +
                     h2 * coarse + 5.0 * e2 + rng.next_range(-0.05, 0.05);
    data.add_sample(std::array{h0, h1, h2, e0, e1, e2, 2.5, coarse}, y);
  }
  return data;
}

std::string gbt_archive(const ml::GBTRegressor& model) {
  std::ostringstream os;
  util::ArchiveWriter w(os);
  model.save(w);
  return os.str();
}

std::string model_archive(const core::AutoPowerModel& model) {
  std::ostringstream os;
  model.save(os);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  bool ok = true;

  // --- 1. Presorted exact-greedy tree building ---------------------------
  const auto data = synthetic_dataset(2000);
  ml::GbtOptions gbt_opts{.num_rounds = 60,
                          .learning_rate = 0.15,
                          .tree = {.max_depth = 4, .lambda = 1.0}};
  ml::GbtOptions ref_opts = gbt_opts;
  ref_opts.tree.reference_split_search = true;

  ml::GBTRegressor reference(ref_opts);
  auto start = std::chrono::steady_clock::now();
  reference.fit(data);
  const double ref_fit_s = seconds_since(start);

  ml::GBTRegressor fast(gbt_opts);
  start = std::chrono::steady_clock::now();
  fast.fit(data);
  const double fast_fit_s = seconds_since(start);

  const double fit_speedup = ref_fit_s / fast_fit_s;
  const bool fit_identical = gbt_archive(fast) == gbt_archive(reference);
  std::printf("GBT fit, n=2000, reference : %.3f s\n", ref_fit_s);
  std::printf("GBT fit, n=2000, presorted : %.3f s  (%.2fx, bar 3.00x)\n",
              fast_fit_s, fit_speedup);
  std::printf("ensembles byte-identical   : %s\n",
              fit_identical ? "yes" : "NO");
  if (!fit_identical) {
    std::printf("FAIL: presorted builder diverged from the reference\n");
    ok = false;
  }
  if (fit_speedup < 3.0) {
    std::printf("FAIL: presorted fit below the 3x bar\n");
    ok = false;
  }

  // --- 2. Flattened batched inference ------------------------------------
  // Repeat the passes so the per-sample baseline runs long enough to time.
  constexpr int kPredictRepeats = 30;
  std::vector<double> per_sample(data.size());
  start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kPredictRepeats; ++rep) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      per_sample[i] = fast.predict(data.features(i));
    }
  }
  const double loop_s = seconds_since(start) / kPredictRepeats;

  std::vector<double> batched;
  start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kPredictRepeats; ++rep) {
    batched = fast.predict_all(data);
  }
  const double batch_s = seconds_since(start) / kPredictRepeats;

  const double predict_speedup = loop_s / batch_s;
  bool predict_identical = batched.size() == per_sample.size();
  for (std::size_t i = 0; predict_identical && i < batched.size(); ++i) {
    predict_identical = batched[i] == per_sample[i];
  }
  std::printf("predict loop, per-sample   : %.2f Msamples/s  (%.4f s)\n",
              data.size() / loop_s / 1e6, loop_s);
  std::printf("predict_all, flattened     : %.2f Msamples/s  (%.4f s, "
              "%.2fx, bar 2.00x)\n",
              data.size() / batch_s / 1e6, batch_s, predict_speedup);
  std::printf("predictions bit-identical  : %s\n",
              predict_identical ? "yes" : "NO");
  if (!predict_identical) {
    std::printf("FAIL: batched inference diverged from predict()\n");
    ok = false;
  }
  if (predict_speedup < 2.0) {
    std::printf("FAIL: batched inference below the 2x bar\n");
    ok = false;
  }

  // --- 3. Parallel sub-model fitting -------------------------------------
  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto exp_data = exp::ExperimentData::build(sim, golden);
  const auto known = exp::ExperimentData::training_configs(2);
  const auto contexts = exp_data.contexts_of(known);

  core::AutoPowerModel serial_model;
  start = std::chrono::steady_clock::now();
  serial_model.train(contexts, golden, 1);
  const double train1_s = seconds_since(start);

  core::AutoPowerModel parallel_model;
  start = std::chrono::steady_clock::now();
  parallel_model.train(contexts, golden, 4);
  const double train4_s = seconds_since(start);

  const double train_speedup = train1_s / train4_s;
  const bool archives_identical =
      model_archive(serial_model) == model_archive(parallel_model);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("AutoPower train, 1 thread  : %.3f s\n", train1_s);
  std::printf("AutoPower train, 4 threads : %.3f s  (%.2fx, %u hw threads)\n",
              train4_s, train_speedup, hw);
  std::printf("archives byte-identical    : %s\n",
              archives_identical ? "yes" : "NO");
  if (!archives_identical) {
    std::printf("FAIL: parallel training changed the trained model\n");
    ok = false;
  }
  // The wall-clock bar only means something when the host can actually run
  // the 4 pool workers at once; on smaller machines the pool interleaves,
  // so report the speedup but do not enforce it.
  const bool train_bar_enforced = hw >= 4;
  if (!train_bar_enforced) {
    std::printf("note: %u hw thread(s) < 4 pool workers; 1.2x bar reported, "
                "not enforced\n",
                hw);
  } else if (train_speedup < 1.2) {
    std::printf("FAIL: parallel training below the 1.2x bar\n");
    ok = false;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(
          f,
          "{\n"
          "  \"gbt_fit_reference_s\": %.6f,\n"
          "  \"gbt_fit_presorted_s\": %.6f,\n"
          "  \"gbt_fit_speedup\": %.3f,\n"
          "  \"predict_loop_s\": %.6f,\n"
          "  \"predict_all_s\": %.6f,\n"
          "  \"predict_speedup\": %.3f,\n"
          "  \"train_1thread_s\": %.6f,\n"
          "  \"train_4thread_s\": %.6f,\n"
          "  \"train_speedup\": %.3f,\n"
          "  \"train_bar_enforced\": %s,\n"
          "  \"hardware_threads\": %u,\n"
          "  \"bit_identical\": %s\n"
          "}\n",
          ref_fit_s, fast_fit_s, fit_speedup, loop_s, batch_s,
          predict_speedup, train1_s, train4_s, train_speedup,
          train_bar_enforced ? "true" : "false", hw,
          (fit_identical && predict_identical && archives_identical)
              ? "true"
              : "false");
      std::fclose(f);
    } else {
      std::printf("FAIL: cannot write %s\n", json_path.c_str());
      ok = false;
    }
  }

  std::printf(ok ? "PASS\n" : "FAIL\n");
  return ok ? 0 : 1;
}
