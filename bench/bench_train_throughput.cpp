// Training-core throughput: the three fast paths of the training stack,
// each self-checked against the exact behaviour it replaces.
//
//   1. Tree building — GBT fit at n=2000 with the presorted exact-greedy
//      builder vs the per-node re-sorting reference.  The ensembles must
//      be byte-identical (same splits, same tie-breaking); the fast
//      builder must clear a 3x speedup bar.
//   2. Batched inference — predict_all on the flattened SoA forest vs a
//      per-sample predict() loop.  Bit-identical outputs; 2x bar,
//      single-threaded.
//   2b. SIMD tier differencing — predict_all with the kernel table forced
//      to scalar vs the host's best tier (util/simd.hpp).  Bit-identical
//      outputs; the 2x bar is enforced only on AVX2 hosts (reported
//      otherwise, like the train bar below).
//   3. Parallel sub-model fitting — AutoPowerModel::train at 4 threads vs
//      1.  Archives must be byte-identical at any thread count; the
//      wall-clock speedup bar applies only when the host has at least as
//      many hardware threads as pool workers (otherwise the pool can only
//      interleave, so the speedup is reported but not enforced).
//
// The bench FAILS (exit 1) on any identity violation or missed bar.
// `--json <path>` additionally writes the headline numbers for
// tools/check.sh to collect.

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "ml/gbt.hpp"
#include "power/golden.hpp"
#include "sim/perfsim.hpp"
#include "util/archive.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"

using namespace autopower;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

// Activity-model-shaped data: a few informative columns, duplicate-heavy
// discrete columns, and one constant column, like real (H, E) matrices
// where hardware parameters repeat across workloads.
ml::Dataset synthetic_dataset(std::size_t n) {
  ml::Dataset data({"h0", "h1", "h2", "e0", "e1", "e2", "konst", "coarse"});
  util::Rng rng(99);
  for (std::size_t i = 0; i < n; ++i) {
    const double h0 = std::floor(rng.next_range(1.0, 5.0));
    const double h1 = std::floor(rng.next_range(0.0, 3.0)) * 16.0;
    const double h2 = std::floor(rng.next_range(0.0, 2.0));
    const double e0 = rng.next_range(0.0, 1.0);
    const double e1 = rng.next_range(0.0, 1.0);
    const double e2 = rng.next_range(0.0, 0.2);
    const double coarse = std::floor(rng.next_range(0.0, 20.0)) / 20.0;
    const double y = h0 * e0 + 0.02 * h1 * (e1 > 0.5 ? 1.0 : 0.3) +
                     h2 * coarse + 5.0 * e2 + rng.next_range(-0.05, 0.05);
    data.add_sample(std::array{h0, h1, h2, e0, e1, e2, 2.5, coarse}, y);
  }
  return data;
}

std::string gbt_archive(const ml::GBTRegressor& model) {
  std::ostringstream os;
  util::ArchiveWriter w(os);
  model.save(w);
  return os.str();
}

std::string model_archive(const core::AutoPowerModel& model) {
  std::ostringstream os;
  model.save(os);
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0) json_path = argv[i + 1];
  }
  bool ok = true;

  // --- 1. Presorted exact-greedy tree building ---------------------------
  const auto data = synthetic_dataset(2000);
  ml::GbtOptions gbt_opts{.num_rounds = 60,
                          .learning_rate = 0.15,
                          .tree = {.max_depth = 4, .lambda = 1.0}};
  ml::GbtOptions ref_opts = gbt_opts;
  ref_opts.tree.reference_split_search = true;

  ml::GBTRegressor reference(ref_opts);
  auto start = std::chrono::steady_clock::now();
  reference.fit(data);
  const double ref_fit_s = seconds_since(start);

  ml::GBTRegressor fast(gbt_opts);
  start = std::chrono::steady_clock::now();
  fast.fit(data);
  const double fast_fit_s = seconds_since(start);

  const double fit_speedup = ref_fit_s / fast_fit_s;
  const bool fit_identical = gbt_archive(fast) == gbt_archive(reference);
  std::printf("GBT fit, n=2000, reference : %.3f s\n", ref_fit_s);
  std::printf("GBT fit, n=2000, presorted : %.3f s  (%.2fx, bar 3.00x)\n",
              fast_fit_s, fit_speedup);
  std::printf("ensembles byte-identical   : %s\n",
              fit_identical ? "yes" : "NO");
  if (!fit_identical) {
    std::printf("FAIL: presorted builder diverged from the reference\n");
    ok = false;
  }
  if (fit_speedup < 3.0) {
    std::printf("FAIL: presorted fit below the 3x bar\n");
    ok = false;
  }

  // --- 2. Flattened batched inference ------------------------------------
  // Repeat the passes so the per-sample baseline runs long enough to time.
  constexpr int kPredictRepeats = 30;
  std::vector<double> per_sample(data.size());
  start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kPredictRepeats; ++rep) {
    for (std::size_t i = 0; i < data.size(); ++i) {
      per_sample[i] = fast.predict(data.features(i));
    }
  }
  const double loop_s = seconds_since(start) / kPredictRepeats;

  std::vector<double> batched;
  start = std::chrono::steady_clock::now();
  for (int rep = 0; rep < kPredictRepeats; ++rep) {
    batched = fast.predict_all(data);
  }
  const double batch_s = seconds_since(start) / kPredictRepeats;

  const double predict_speedup = loop_s / batch_s;
  bool predict_identical = batched.size() == per_sample.size();
  for (std::size_t i = 0; predict_identical && i < batched.size(); ++i) {
    predict_identical = batched[i] == per_sample[i];
  }
  std::printf("predict loop, per-sample   : %.2f Msamples/s  (%.4f s)\n",
              data.size() / loop_s / 1e6, loop_s);
  std::printf("predict_all, flattened     : %.2f Msamples/s  (%.4f s, "
              "%.2fx, bar 2.00x)\n",
              data.size() / batch_s / 1e6, batch_s, predict_speedup);
  std::printf("predictions bit-identical  : %s\n",
              predict_identical ? "yes" : "NO");
  if (!predict_identical) {
    std::printf("FAIL: batched inference diverged from predict()\n");
    ok = false;
  }
  if (predict_speedup < 2.0) {
    std::printf("FAIL: batched inference below the 2x bar\n");
    ok = false;
  }

  // --- 2b. SIMD tier differencing on the flattened forest ----------------
  // predict_all under a forced-scalar kernel table vs the host's best
  // tier.  The outputs must be bit-identical (the vector kernels promise
  // per-row op-order equality); the >= 2x speedup bar is enforced only
  // when the best tier is AVX2 — on SSE2-or-less hosts the number is
  // reported, not enforced, mirroring the train_bar_enforced convention.
  const util::simd::Tier best_tier = util::simd::detect_best_tier();
  const util::simd::Tier entry_tier = util::simd::active_tier();

  // Interleave the two tiers in short batches and keep each tier's best
  // batch: a scheduler hiccup or frequency dip then penalises one batch,
  // not one whole tier's only measurement, so the ratio reflects the
  // kernels rather than which tier drew the noisy timeslice.
  constexpr int kTierBatches = 6;
  constexpr int kTierBatchReps = 5;
  double scalar_tier_s = std::numeric_limits<double>::infinity();
  double best_tier_s = std::numeric_limits<double>::infinity();
  std::vector<double> scalar_pred;
  std::vector<double> best_pred;
  for (int batch = 0; batch < kTierBatches; ++batch) {
    util::simd::set_active_tier(util::simd::Tier::kScalar);
    start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kTierBatchReps; ++rep) {
      scalar_pred = fast.predict_all(data);
    }
    scalar_tier_s =
        std::min(scalar_tier_s, seconds_since(start) / kTierBatchReps);

    util::simd::set_active_tier(best_tier);
    start = std::chrono::steady_clock::now();
    for (int rep = 0; rep < kTierBatchReps; ++rep) {
      best_pred = fast.predict_all(data);
    }
    best_tier_s =
        std::min(best_tier_s, seconds_since(start) / kTierBatchReps);
  }
  util::simd::set_active_tier(entry_tier);

  const double simd_speedup = scalar_tier_s / best_tier_s;
  bool tiers_identical = scalar_pred.size() == best_pred.size();
  for (std::size_t i = 0; tiers_identical && i < scalar_pred.size(); ++i) {
    tiers_identical = scalar_pred[i] == best_pred[i];
  }
  const bool simd_bar_enforced = best_tier == util::simd::Tier::kAvx2;
  std::printf("predict_all, scalar tier   : %.2f Msamples/s  (%.4f s)\n",
              data.size() / scalar_tier_s / 1e6, scalar_tier_s);
  std::printf("predict_all, %-6s tier   : %.2f Msamples/s  (%.4f s, "
              "%.2fx, bar 2.00x)\n",
              std::string(util::simd::tier_name(best_tier)).c_str(),
              data.size() / best_tier_s / 1e6, best_tier_s, simd_speedup);
  std::printf("tiers bit-identical        : %s\n",
              tiers_identical ? "yes" : "NO");
  if (!tiers_identical) {
    std::printf("FAIL: %s tier diverged from the scalar kernels\n",
                std::string(util::simd::tier_name(best_tier)).c_str());
    ok = false;
  }
  if (!simd_bar_enforced) {
    std::printf("note: best tier is %s, not avx2; 2x bar reported, "
                "not enforced\n",
                std::string(util::simd::tier_name(best_tier)).c_str());
  } else if (simd_speedup < 2.0) {
    std::printf("FAIL: best SIMD tier below the 2x bar\n");
    ok = false;
  }

  // --- 3. Parallel sub-model fitting -------------------------------------
  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto exp_data = exp::ExperimentData::build(sim, golden);
  const auto known = exp::ExperimentData::training_configs(2);
  const auto contexts = exp_data.contexts_of(known);

  core::AutoPowerModel serial_model;
  start = std::chrono::steady_clock::now();
  serial_model.train(contexts, golden, 1);
  const double train1_s = seconds_since(start);

  core::AutoPowerModel parallel_model;
  start = std::chrono::steady_clock::now();
  parallel_model.train(contexts, golden, 4);
  const double train4_s = seconds_since(start);

  const double train_speedup = train1_s / train4_s;
  const bool archives_identical =
      model_archive(serial_model) == model_archive(parallel_model);
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  std::printf("AutoPower train, 1 thread  : %.3f s\n", train1_s);
  std::printf("AutoPower train, 4 threads : %.3f s  (%.2fx, %u hw threads)\n",
              train4_s, train_speedup, hw);
  std::printf("archives byte-identical    : %s\n",
              archives_identical ? "yes" : "NO");
  if (!archives_identical) {
    std::printf("FAIL: parallel training changed the trained model\n");
    ok = false;
  }
  // The wall-clock bar only means something when the host can actually run
  // the 4 pool workers at once; on smaller machines the pool interleaves,
  // so report the speedup but do not enforce it.
  const bool train_bar_enforced = hw >= 4;
  if (!train_bar_enforced) {
    std::printf("note: %u hw thread(s) < 4 pool workers; 1.2x bar reported, "
                "not enforced\n",
                hw);
  } else if (train_speedup < 1.2) {
    std::printf("FAIL: parallel training below the 1.2x bar\n");
    ok = false;
  }

  if (!json_path.empty()) {
    std::FILE* f = std::fopen(json_path.c_str(), "w");
    if (f != nullptr) {
      std::fprintf(
          f,
          "{\n"
          "  \"gbt_fit_reference_s\": %.6f,\n"
          "  \"gbt_fit_presorted_s\": %.6f,\n"
          "  \"gbt_fit_speedup\": %.3f,\n"
          "  \"predict_loop_s\": %.6f,\n"
          "  \"predict_all_s\": %.6f,\n"
          "  \"predict_speedup\": %.3f,\n"
          "  \"simd_tier\": \"%s\",\n"
          "  \"predict_scalar_tier_s\": %.6f,\n"
          "  \"predict_best_tier_s\": %.6f,\n"
          "  \"simd_predict_speedup\": %.3f,\n"
          "  \"simd_bar_enforced\": %s,\n"
          "  \"train_1thread_s\": %.6f,\n"
          "  \"train_4thread_s\": %.6f,\n"
          "  \"train_speedup\": %.3f,\n"
          "  \"train_bar_enforced\": %s,\n"
          "  \"hardware_threads\": %u,\n"
          "  \"bit_identical\": %s\n"
          "}\n",
          ref_fit_s, fast_fit_s, fit_speedup, loop_s, batch_s,
          predict_speedup,
          std::string(util::simd::tier_name(best_tier)).c_str(),
          scalar_tier_s, best_tier_s, simd_speedup,
          simd_bar_enforced ? "true" : "false", train1_s, train4_s,
          train_speedup, train_bar_enforced ? "true" : "false", hw,
          (fit_identical && predict_identical && tiers_identical &&
           archives_identical)
              ? "true"
              : "false");
      std::fclose(f);
    } else {
      std::printf("FAIL: cannot write %s\n", json_path.c_str());
      ok = false;
    }
  }

  std::printf(ok ? "PASS\n" : "FAIL\n");
  return ok ? 0 : 1;
}
