// Reproduces paper Table IV: fine-grained time-based power trace
// prediction for the large GEMM and SPMM workloads (millions of cycles,
// 50-cycle windows), evaluated on C2, C3 and C4 with a model trained on
// only two known configurations (C1, C15) using average-power data — no
// tuning on time-based traces.
//
// Reported per (workload, config): max-power error, min-power error, and
// the average per-window error, as in the paper's Table IV (single-digit
// to low-double-digit percentages expected).

#include <cstdio>
#include <iostream>

#include "core/autopower.hpp"
#include "exp/dataset.hpp"
#include "exp/trace.hpp"
#include "util/table.hpp"

using namespace autopower;

int main() {
  std::puts("=== Table IV: time-based power trace prediction ===\n");

  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(sim, golden);
  const auto train_configs = exp::ExperimentData::training_configs(2);

  core::AutoPowerModel model;
  model.train(data.contexts_of(train_configs), golden);

  util::TablePrinter table({"Workload", "Config", "Cycles", "Windows",
                            "Max Power Err", "Min Power Err",
                            "Average Err"});
  for (const auto& profile : workload::trace_workloads()) {
    for (const char* cfg_name : {"C2", "C3", "C4"}) {
      const auto& cfg = arch::boom_config(cfg_name);
      const auto trace = exp::build_trace(sim, golden, cfg, profile);
      const auto predicted = model.predict_trace(trace.windows);
      const auto err = exp::trace_errors(trace.golden_total, predicted);
      table.add_row({profile.name, cfg_name,
                     util::fmt(trace.total_cycles, 0),
                     std::to_string(trace.windows.size()),
                     util::fmt_pct(err.max_power_error, 1),
                     util::fmt_pct(err.min_power_error, 1),
                     util::fmt_pct(err.average_error, 1)});
    }
  }
  table.print(std::cout);
  std::puts(
      "\nModel trained on C1/C15 average power only; windows are 50 cycles "
      "(paper Sec. III-B5).");
  return 0;
}
