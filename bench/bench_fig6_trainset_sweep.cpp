// Reproduces paper Fig. 6: accuracy summary under different numbers of
// known configurations for training (AutoPower, McPAT-Calib, and
// McPAT-Calib + Component; "Comp" in the paper's legend).
//
// Expected shape: every method improves as the training set grows;
// AutoPower dominates throughout and its advantage is largest in the
// extreme few-shot regime (k = 2).

#include <cstdio>
#include <iostream>

#include "exp/harness.hpp"
#include "util/table.hpp"

using namespace autopower;

int main() {
  std::puts("=== Fig. 6: accuracy vs number of training configurations ===\n");

  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(sim, golden);

  util::TablePrinter mape_table(
      {"k", "AutoPower MAPE", "McPAT-Calib MAPE", "McPAT-Calib+Comp MAPE"});
  util::TablePrinter r2_table(
      {"k", "AutoPower R2", "McPAT-Calib R2", "McPAT-Calib+Comp R2"});

  for (int k = 2; k <= 6; ++k) {
    const auto results = exp::compare_methods(data, golden, k);
    mape_table.add_row({std::to_string(k),
                        util::fmt_pct(results[0].accuracy.mape),
                        util::fmt_pct(results[1].accuracy.mape),
                        util::fmt_pct(results[2].accuracy.mape)});
    r2_table.add_row({std::to_string(k), util::fmt(results[0].accuracy.r2),
                      util::fmt(results[1].accuracy.r2),
                      util::fmt(results[2].accuracy.r2)});
  }

  mape_table.print(std::cout);
  std::cout << '\n';
  r2_table.print(std::cout);
  return 0;
}
