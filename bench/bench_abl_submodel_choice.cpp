// Design ablation ABL2 (DESIGN.md): sub-model family choice.
//
// The paper picks ridge ("linear model with L2 normalization") for the
// *structural* quantities (register count, gating rate) because they must
// extrapolate from two configurations, and XGBoost for the *activity*
// quantities (effective active rate alpha') because that correlation "can
// be relatively complex".  This bench quantifies both choices at k = 2:
//   1. clock group with GBT-alpha' vs ridge-alpha',
//   2. register-count prediction with ridge vs a GBT fitted on the same
//      two structural samples (trees cannot extrapolate).

#include <cstdio>
#include <iostream>
#include <vector>

#include "core/autopower.hpp"
#include "core/features.hpp"
#include "exp/dataset.hpp"
#include "ml/gbt.hpp"
#include "ml/metrics.hpp"
#include "util/table.hpp"

using namespace autopower;

int main() {
  std::puts("=== Ablation: sub-model family choice (k=2) ===\n");

  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(sim, golden);
  const auto train_configs = exp::ExperimentData::training_configs(2);
  const auto train_ctx = data.contexts_of(train_configs);
  const auto eval = data.samples_excluding(train_configs);

  // --- Part 1: alpha' as GBT (paper) vs ridge -----------------------------
  util::TablePrinter alpha_table(
      {"alpha' model", "Clock MAPE", "Clock R", "Total MAPE"});
  for (const bool linear : {false, true}) {
    core::AutoPowerOptions options;
    options.clock.linear_alpha = linear;
    core::AutoPowerModel model(options);
    model.train(train_ctx, golden);

    std::vector<double> clk_actual;
    std::vector<double> clk_pred;
    std::vector<double> tot_actual;
    std::vector<double> tot_pred;
    for (const auto* s : eval) {
      const auto pred = model.predict(s->ctx);
      clk_actual.push_back(s->golden.totals().clock);
      clk_pred.push_back(pred.totals().clock);
      tot_actual.push_back(s->golden.total());
      tot_pred.push_back(pred.total());
    }
    alpha_table.add_row({linear ? "ridge (ablation)" : "XGBoost (paper)",
                         util::fmt_pct(ml::mape(clk_actual, clk_pred)),
                         util::fmt(ml::pearson_r(clk_actual, clk_pred)),
                         util::fmt_pct(ml::mape(tot_actual, tot_pred))});
  }
  alpha_table.print(std::cout);

  // --- Part 2: register count as ridge (paper) vs GBT ---------------------
  // Trees cannot extrapolate beyond the two training configurations; ridge
  // captures the near-affine structural scaling.
  std::puts("\nRegister-count prediction over held-out configs:");
  std::vector<double> actual;
  std::vector<double> ridge_pred;
  std::vector<double> gbt_pred;
  core::AutoPowerModel reference;
  reference.train(train_ctx, golden);

  for (arch::ComponentKind c : arch::all_components()) {
    // GBT on the same two structural samples.
    ml::Dataset structural(
        core::feature_names(c, core::FeatureSpec::h()));
    for (const auto& name : train_configs) {
      const auto& cfg = arch::boom_config(name);
      structural.add_sample(
          cfg.features_for(arch::component_hw_params(c)),
          golden.netlist_of(cfg)[static_cast<std::size_t>(c)]
              .register_count);
    }
    ml::GBTRegressor gbt;
    gbt.fit(structural);

    for (const auto& cfg : arch::boom_design_space()) {
      bool is_train = false;
      for (const auto& name : train_configs) is_train |= cfg.name() == name;
      if (is_train) continue;
      actual.push_back(
          golden.netlist_of(cfg)[static_cast<std::size_t>(c)]
              .register_count);
      ridge_pred.push_back(
          reference.clock_model(c).predict_register_count(cfg));
      gbt_pred.push_back(gbt.predict(
          cfg.features_for(arch::component_hw_params(c))));
    }
  }
  std::printf("  ridge (paper): MAPE=%.2f%%\n", ml::mape(actual, ridge_pred));
  std::printf("  GBT (ablation): MAPE=%.2f%%\n", ml::mape(actual, gbt_pred));
  return 0;
}
