// Shared reporting helper for the Fig. 4 / Fig. 5 accuracy benchmarks.
#pragma once

#include <iostream>

#include "exp/harness.hpp"
#include "util/table.hpp"

namespace autopower::bench {

/// Trains AutoPower and the baselines on `k_train` spread configurations
/// and prints the paper-style comparison: per-sample scatter points plus
/// the MAPE / R^2 summary.
inline void print_accuracy_comparison(int k_train, bool print_scatter) {
  sim::PerfSimulator sim;
  power::GoldenPowerModel golden;
  const auto data = exp::ExperimentData::build(sim, golden);

  exp::MethodSelection sel;
  sel.autopower_minus = false;
  const auto results = exp::compare_methods(data, golden, k_train, sel);

  const auto train = exp::ExperimentData::training_configs(k_train);
  std::cout << "Training configurations:";
  for (const auto& name : train) std::cout << ' ' << name;
  std::cout << "\nEvaluation: all workloads on the remaining "
            << 15 - k_train << " configurations\n\n";

  if (print_scatter) {
    util::TablePrinter scatter({"Sample", "Golden (mW)", "AutoPower",
                                "McPAT-Calib", "McPAT-Calib+Comp"});
    for (std::size_t i = 0; i < results[0].actual.size(); ++i) {
      scatter.add_row({results[0].sample_names[i],
                       util::fmt(results[0].actual[i]),
                       util::fmt(results[0].predicted[i]),
                       util::fmt(results[1].predicted[i]),
                       util::fmt(results[2].predicted[i])});
    }
    scatter.print(std::cout);
    std::cout << '\n';
  }

  util::TablePrinter summary({"Method", "MAPE", "R2", "R", "n"});
  for (const auto& r : results) {
    summary.add_row({r.method, util::fmt_pct(r.accuracy.mape),
                     util::fmt(r.accuracy.r2), util::fmt(r.accuracy.pearson),
                     std::to_string(r.accuracy.n)});
  }
  summary.print(std::cout);
}

}  // namespace autopower::bench
